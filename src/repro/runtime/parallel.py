"""Real threaded execution of recorded task graphs.

Everything else in :mod:`repro.runtime` *simulates* concurrency; this
module actually runs it.  A :class:`ParallelExecutor` replays a
recorded :class:`~repro.runtime.graph.TaskGraph` on a
``concurrent.futures.ThreadPoolExecutor``: tasks are dispatched as
their dependency counts drain, exactly the dataflow execution SLATE
gets from OpenMP ``task depend``.  NumPy/BLAS kernels release the GIL,
so independent tiles genuinely overlap on multicore hosts.

Guarantees and safety nets:

* **Dependency order** — a task starts only after every recorded
  dependency finished.  The dispatch ready-queue is a min-heap on task
  id, so a single-worker run executes in exact program order and is
  bit-identical to eager execution.
* **Lookahead window** — like the schedule simulator, an optional
  ``lookahead`` bounds how many program phases past the completed
  prefix may enter the ready queue (SLATE's bounded lookahead panels);
  ``None`` leaves dataflow order unconstrained.
* **Epoch / last-writer assertions** — before a task touches its
  tiles, the executor checks (under a lock) that every tile it reads
  or overwrites was last written by exactly the task program order
  says (the tile's *epoch*), and that no concurrent reader/writer is
  in flight.  Any scheduling bug that would corrupt data surfaces as
  an :class:`OrderingViolationError` at execution time instead of as a
  silently wrong result.
* **Measured timeline** — with a ``sink``
  (:class:`repro.obs.timeline.TraceSink`) attached, every execution
  emits a :class:`~repro.obs.timeline.TaskEvent` carrying *real*
  ``perf_counter`` start/finish timestamps, flagged ``measured=True``.
  The schema matches simulated traces, so Chrome-trace export, the
  ASCII Gantt, and stall attribution work unchanged on real runs.

The executor runs *windows* of an append-only graph: a deferred
:class:`~repro.runtime.executor.Runtime` records payload closures and
calls :meth:`ParallelExecutor.run` at every synchronization point
(scalar reduction reads, ``to_array`` gathers), so adaptive numeric
algorithms keep their data-dependent control flow while every window
executes with real concurrency.

Live fault tolerance
--------------------

With a :class:`~repro.resilience.live.RecoveryPolicy` (and optionally
a :class:`~repro.resilience.live.LiveFaultInjector` +
:class:`~repro.resilience.live.TileAccessor`), the executor switches
to a recovering dispatch loop that survives payload failures instead
of failing fast:

* **Retries** — a retryable payload exception (injected transients,
  detected tile corruption, generic transient-looking errors) gets the
  task re-executed up to ``max_retries`` times with seeded exponential
  backoff + jitter.  Because payloads mutate tiles in place, the first
  execution attempt snapshots the task's write tiles and each retry
  restores them first.  Deterministic failures —
  ``numpy.linalg.LinAlgError`` (numeric breakdown the *algorithm* must
  handle, e.g. Cholesky on a non-SPD iterate), sanitizer findings, and
  :class:`OrderingViolationError` — are never retried.
* **Timeouts & stragglers** — the dispatch loop polls running
  attempts; one exceeding the wall-clock ``task_timeout``, or running
  ``straggler_factor`` x the rolling mean duration of its kind, is
  flagged (FaultEvent + RecoveryStats) and, if its payload has not
  started yet (it is still inside an injected stall), a speculative
  backup attempt launches.
* **Speculation, first-claimer-wins** — threads share tile memory, so
  two attempts of one task must never run the payload concurrently.
  Each attempt *claims* the payload under the executor lock before
  touching any tile; the loser wakes from its (interruptible) stall,
  sees the claim, and reports itself lost without making any writes —
  the "losing attempt's writes" are discarded by never being made, and
  tile epochs only ever advance through the winner's check-out.
* **Drain guarantee** — the recovering loop exits only once every
  launched attempt (winners, losers, failures) has reported back, so
  :attr:`inflight_attempts` is zero after every window — the leak
  invariant the fault-injection CI job gates on.

The fault-free path is untouched: with no policy and no injector the
original fail-fast dispatch loop runs, with zero per-task overhead.
"""

from __future__ import annotations

import heapq
import os
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from .graph import TaskGraph
from .task import Task, TaskKind, TileRef

__all__ = ["ParallelExecutor", "ExecutionStats", "OrderingViolationError",
           "default_workers"]


class OrderingViolationError(RuntimeError):
    """A task touched a tile out of the recorded dependency order."""


def default_workers() -> int:
    """Worker-count default: one thread per core."""
    return max(1, os.cpu_count() or 1)


def _new_recovery_stats():
    from ..resilience.faults import RecoveryStats
    return RecoveryStats()


def _peak_rss_bytes() -> int:
    """Peak resident set of this process, in bytes (0 if unavailable).

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    import sys
    return int(peak if sys.platform == "darwin" else peak * 1024)


@dataclass
class ExecutionStats:
    """Accumulated accounting of a :class:`ParallelExecutor`."""

    workers: int = 1
    tasks_run: int = 0
    windows: int = 0
    #: Wall-clock seconds spent inside :meth:`ParallelExecutor.run`
    #: (the measured makespan across all execution windows).
    wall_seconds: float = 0.0
    #: Summed per-task execution seconds (over all worker threads);
    #: ``busy_seconds / (wall_seconds * workers)`` is the measured
    #: parallel utilization.  Only winning successful attempts count;
    #: failed/lost attempt time goes to ``recovery.reexecution_seconds``.
    busy_seconds: float = 0.0
    per_kind_seconds: Dict[str, float] = field(default_factory=dict)
    #: Summed per-task *CPU* seconds (``time.thread_time`` around each
    #: payload).  BLAS kernels release the GIL but still burn CPU, so
    #: ``cpu_seconds`` close to ``busy_seconds`` means compute-bound
    #: lanes; a large gap means blocking (lock waits, injected stalls,
    #: page faults).
    cpu_seconds: float = 0.0
    per_kind_cpu_seconds: Dict[str, float] = field(default_factory=dict)
    #: High-water resident set of the whole process, sampled after
    #: every execution window (bytes; 0 when unavailable).
    peak_rss_bytes: int = 0
    #: Scheduler<->worker control-plane traffic (processes backend
    #: only; tiles travel through shared memory and are not counted
    #: here).  Zero on the threads backend.
    comm_messages: int = 0
    comm_bytes: int = 0
    #: Wire-level retransmission cost paid by the reliable comm layer
    #: (processes backend under network faults).  Kept separate from
    #: ``comm_messages``/``comm_bytes``, which count each application
    #: message exactly once however many times its frame crossed the
    #: wire.
    comm_retrans_messages: int = 0
    comm_retrans_bytes: int = 0
    #: Live recovery accounting (retries, timeouts, speculation,
    #: injected faults); all-zero on fault-free runs.
    recovery: object = field(default_factory=_new_recovery_stats)

    @property
    def utilization(self) -> float:
        denom = self.wall_seconds * max(self.workers, 1)
        return self.busy_seconds / denom if denom > 0.0 else 0.0


class _TaskState:
    """Per-task attempt bookkeeping for the recovering dispatch loop."""

    __slots__ = ("tid", "attempts", "live", "retries_used", "claimed",
                 "finished", "payload_ran", "snapshot", "snapshot_taken",
                 "origin", "cancel", "started", "done_attempts",
                 "straggler_flagged", "timeout_flagged", "backup_out")

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.attempts = 0          # launched so far
        self.live = 0              # launched minus reported-back
        self.retries_used = 0
        self.claimed: Optional[int] = None
        self.finished = False
        self.payload_ran = False
        self.snapshot: Optional[Dict[TileRef, object]] = None
        self.snapshot_taken = False
        self.origin: Dict[int, str] = {}
        self.cancel: Dict[int, threading.Event] = {}
        self.started: Dict[int, float] = {}
        self.done_attempts: Set[int] = set()
        self.straggler_flagged: Set[int] = set()
        self.timeout_flagged: Set[int] = set()
        self.backup_out = False


class ParallelExecutor:
    """Replay a recorded task graph on a thread pool.

    Parameters
    ----------
    graph:
        The (append-only) task graph.  Windows of it are executed by
        successive :meth:`run` calls; tasks before a window's start are
        assumed already executed (eagerly or by a previous window).
    fns:
        ``tid -> payload closure``.  Tasks without a payload (symbolic
        graphs, pure-metadata tasks) are ordering no-ops: they respect
        and propagate dependencies but execute nothing and publish no
        kernel metrics — replaying an eagerly-executed or symbolic
        graph never double-counts kernel invocations.
    workers:
        Thread-pool size (default: one per core).  ``workers=1``
        executes in exact program order.
    lookahead:
        Optional phase-window bound on the ready queue (``None`` =
        unbounded dataflow order, like SLATE's default).
    sink:
        Optional :class:`repro.obs.timeline.TraceSink` receiving
        measured :class:`TaskEvent`s (and, under recovery,
        :class:`FaultEvent`s for retries/timeouts/speculation).
    validate:
        Run :meth:`TaskGraph.validate` over each window before
        executing it (cycle/forward-edge/concurrent-writer checks).
    sanitizer:
        Optional :class:`repro.analysis.sanitizer.TileSanitizer`; each
        payload runs inside a sanitizer frame on its worker thread, so
        actual tile accesses are diffed against the declared footprint
        exactly as in eager mode.
    recovery:
        Optional :class:`repro.resilience.live.RecoveryPolicy`
        enabling the recovering dispatch loop (retries, timeouts,
        straggler speculation).  ``None`` keeps the fail-fast path.
    injector:
        Optional :class:`repro.resilience.live.LiveFaultInjector`
        evaluating a :class:`FaultPlan`'s live faults inside workers.
        An active injector without an explicit ``recovery`` implies a
        default :class:`RecoveryPolicy`.
    tiles:
        Optional :class:`repro.resilience.live.TileAccessor` used for
        write-tile snapshots (restore-on-retry), corruption injection,
        and non-finite scrubbing.  Without it, retries re-run payloads
        without restoring — only safe for idempotent payloads.
    """

    def __init__(self, graph: TaskGraph,
                 fns: Optional[Dict[int, Callable[[], None]]] = None, *,
                 workers: Optional[int] = None,
                 lookahead: Optional[int] = None,
                 sink=None,
                 validate: bool = True,
                 sanitizer=None,
                 recovery=None,
                 injector=None,
                 tiles=None) -> None:
        self.graph = graph
        self.fns = {} if fns is None else fns
        self.workers = max(1, int(workers) if workers else default_workers())
        self.lookahead = lookahead
        self.sink = sink
        self.validate = validate
        self.sanitizer = sanitizer
        if injector is not None and not injector.active:
            injector = None
        if recovery is None and injector is not None:
            from ..resilience.live import RecoveryPolicy
            # A plan injecting corruption needs write scrubbing on, or
            # the injected NaN could never be detected and retried.
            recovery = RecoveryPolicy(
                scrub_writes=bool(injector.plan.corruptions))
        self.recovery_policy = recovery
        self.injector = injector
        self.tiles = tiles
        self._recover = recovery is not None
        self.stats = ExecutionStats(workers=self.workers)
        if validate:
            graph.validate()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        #: Messages: ``(disposition, tid, attempt, t0, t1, slot, cpu,
        #: exc)`` with disposition "done" | "fail" | "lost"; ``cpu`` is
        #: the attempt's thread CPU seconds.
        self._resq: "queue.Queue[Tuple[str, int, int, float, float, int, float, Optional[BaseException]]]" = queue.Queue()
        #: Tasks whose effects are visible (executed here or accounted
        #: as an eager/pre-window execution).
        self._done: Dict[int, bool] = {}
        #: Tile epoch table: ref -> tid of the last *completed* writer.
        self._completed_writer: Dict[TileRef, int] = {}
        #: In-flight access tracking for the race assertions.
        self._writer_active: Dict[TileRef, int] = {}
        self._readers_active: Dict[TileRef, int] = {}
        #: Program-order expectation per task: ((ref, last_writer), ...)
        #: over the task's reads and writes, filled by ``_prepare``.
        self._expected: Dict[int, Tuple[Tuple[TileRef, Optional[int]], ...]] = {}
        self._prep_last_writer: Dict[TileRef, int] = {}
        self._prep_cursor = 0
        #: First tid not yet accounted for (executed or external).
        self._floor = 0
        self._epoch: Optional[float] = None
        self._slot_of_thread: Dict[int, int] = {}
        self._counters: Dict[TaskKind, object] = {}
        #: Recovery bookkeeping.
        self._states: Dict[int, _TaskState] = {}
        self._inflight = 0
        self._kind_n: Dict[str, int] = {}
        self._kind_t: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def inflight_attempts(self) -> int:
        """Attempts launched but not yet reported back.  Zero after
        every completed :meth:`run` — the no-leak invariant."""
        return self._inflight

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            size = self.workers
            if self._recover:
                # Headroom so speculative backups and retries are not
                # queued behind stall-sleeping originals: primaries are
                # still gated at `workers` by the dispatch loop, the
                # extra threads only soak recovery attempts.
                size += max(2, self.workers)
            self._pool = ThreadPoolExecutor(
                max_workers=size, thread_name_prefix="repro-exec")
        return self._pool

    # ------------------------------------------------------------------
    # Window preparation
    # ------------------------------------------------------------------

    def _prepare(self, end: int) -> None:
        """Extend the program-order epoch expectations up to ``end``."""
        tasks = self.graph.tasks
        for tid in range(self._prep_cursor, end):
            t = tasks[tid]
            exp = []
            seen = set()
            for ref in t.reads + t.writes:
                if ref in seen:
                    continue
                seen.add(ref)
                exp.append((ref, self._prep_last_writer.get(ref)))
            self._expected[tid] = tuple(exp)
            for ref in t.writes:
                self._prep_last_writer[ref] = tid
        self._prep_cursor = max(self._prep_cursor, end)

    def _account_external(self, upto: int) -> None:
        """Tasks in ``[floor, upto)`` ran outside this executor (eager
        prefix before deferral was enabled); fold their effects into
        the epoch tables so later windows see consistent state."""
        tasks = self.graph.tasks
        for tid in range(self._floor, upto):
            self._done[tid] = True
            self._expected.pop(tid, None)
            for ref in tasks[tid].writes:
                self._completed_writer[ref] = tid
        self._floor = max(self._floor, upto)

    def abandon_window(self) -> None:
        """Fold every prepared-but-unexecuted task into the epoch
        tables as if it had run (program order), discarding payloads.

        Used by the runtime after a window failed mid-execution and
        the *algorithm* recovers at a higher level (e.g. the Cholesky
        iteration of QDWH falling back to the QR iteration after a
        ``posv`` breakdown): the failed window's remaining tasks are
        dropped wholesale, and the algorithm re-submits fresh work
        whose epoch expectations then chain off these folded writes.
        Only call once the failed :meth:`run` has drained — there must
        be no attempt in flight.
        """
        if self._inflight:
            raise RuntimeError(
                f"abandon_window with {self._inflight} attempt(s) still "
                "in flight; the failed run() must drain first")
        tasks = self.graph.tasks
        with self._lock:
            for tid in sorted(self._expected):
                self._done[tid] = True
                for ref in tasks[tid].writes:
                    self._completed_writer[ref] = tid
                self.fns.pop(tid, None)
            self._expected.clear()
            # Nothing is in flight; clear any marks a failed attempt
            # may have leaked (defensive — workers release on failure).
            self._writer_active.clear()
            self._readers_active.clear()
            self._states.clear()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, start: int = 0, end: Optional[int] = None) -> float:
        """Execute tasks ``[start, end)``; returns the window's wall
        seconds.  Dependencies on tasks before ``start`` are treated as
        satisfied (they executed in a previous window or eagerly)."""
        tasks = self.graph.tasks
        if end is None:
            end = len(tasks)
        if self.validate:
            self.graph.validate(end)
        self._prepare(end)
        if start > self._floor:
            self._account_external(start)
        if end <= start:
            return 0.0
        self._floor = end

        # Window-local dependency bookkeeping.
        indeg: Dict[int, int] = {}
        succ: Dict[int, List[int]] = {}
        for tid in range(start, end):
            cnt = 0
            for d in tasks[tid].deps:
                if d >= start and not self._done.get(d, False):
                    succ.setdefault(d, []).append(tid)
                    cnt += 1
            indeg[tid] = cnt

        # Lookahead gate over program phases (panel steps).
        phase_remaining: Dict[int, int] = {}
        for tid in range(start, end):
            p = tasks[tid].phase
            phase_remaining[p] = phase_remaining.get(p, 0) + 1
        phases = sorted(phase_remaining)
        prefix_idx = 0  # index into `phases` of the oldest open phase

        def gate_open(p: int) -> bool:
            if self.lookahead is None:
                return True
            prefix = phases[prefix_idx] if prefix_idx < len(phases) else p
            return p <= prefix + self.lookahead

        ready: List[int] = []
        parked: Dict[int, List[int]] = {}

        def make_eligible(tid: int) -> None:
            p = tasks[tid].phase
            if gate_open(p):
                heapq.heappush(ready, tid)
            else:
                parked.setdefault(p, []).append(tid)

        def on_complete(tid: int) -> None:
            """Successor release + phase-gate advance for a finished
            task (dispatch thread only)."""
            nonlocal prefix_idx
            for s in succ.get(tid, ()):
                indeg[s] -= 1
                if indeg[s] == 0:
                    make_eligible(s)
            p = tasks[tid].phase
            phase_remaining[p] -= 1
            if phase_remaining[p] == 0:
                while (prefix_idx < len(phases)
                       and phase_remaining[phases[prefix_idx]] == 0):
                    prefix_idx += 1
                if self.lookahead is not None:
                    limit = ((phases[prefix_idx] if prefix_idx < len(phases)
                              else p) + self.lookahead)
                    for pp in [q for q in parked if q <= limit]:
                        for tid2 in parked.pop(pp):
                            heapq.heappush(ready, tid2)

        for tid in range(start, end):
            if indeg[tid] == 0:
                make_eligible(tid)

        self._ensure_pool()
        t_wall0 = perf_counter()
        if self._epoch is None:
            self._epoch = t_wall0
        n_window = end - start

        if self._recover:
            failure = self._drive_recover(tasks, n_window, ready,
                                          on_complete)
        else:
            failure = self._drive(tasks, n_window, ready, on_complete)

        wall = perf_counter() - t_wall0
        self.stats.wall_seconds += wall
        self.stats.windows += 1
        self.stats.peak_rss_bytes = max(self.stats.peak_rss_bytes,
                                        _peak_rss_bytes())
        if failure is not None:
            raise failure
        return wall

    # -- fail-fast dispatch (no recovery configured) -------------------

    def _drive(self, tasks, n_window: int, ready: List[int],
               on_complete) -> Optional[BaseException]:
        pool = self._pool
        completed = 0
        failure: Optional[BaseException] = None

        while completed < n_window:
            while ready and self._inflight < self.workers and failure is None:
                tid = heapq.heappop(ready)
                pool.submit(self._execute, tid)
                self._inflight += 1
            if self._inflight == 0:
                if failure is not None:
                    break
                raise RuntimeError(
                    f"executor stalled with {n_window - completed} task(s) "
                    "unfinished and none ready — dependency bookkeeping "
                    "bug or a graph the validator should have rejected")
            _disp, tid, _attempt, t0, t1, slot, cpu, exc = self._resq.get()
            self._inflight -= 1
            completed += 1
            if exc is not None:
                failure = failure or exc
                continue
            self._account_done(tasks[tid], t0, t1, slot, cpu)
            if failure is not None:
                continue
            on_complete(tid)
        return failure

    def _account_done(self, t: Task, t0: float, t1: float,
                      slot: int, cpu: float = 0.0) -> None:
        dur = t1 - t0
        self.stats.tasks_run += 1
        self.stats.busy_seconds += dur
        kind = t.kind.value
        self.stats.per_kind_seconds[kind] = (
            self.stats.per_kind_seconds.get(kind, 0.0) + dur)
        if cpu > 0.0:
            self.stats.cpu_seconds += cpu
            self.stats.per_kind_cpu_seconds[kind] = (
                self.stats.per_kind_cpu_seconds.get(kind, 0.0) + cpu)
        self._kind_n[kind] = self._kind_n.get(kind, 0) + 1
        self._kind_t[kind] = self._kind_t.get(kind, 0.0) + dur
        if self.sink is not None:
            from ..obs.timeline import TaskEvent
            self.sink.on_task(TaskEvent(
                tid=t.tid, kind=kind, rank=t.rank, slot=f"thr{slot}",
                phase=t.phase, flops=t.flops, start=t0, end=t1,
                duration=dur, label=t.label, measured=True, cpu=cpu))

    # -- recovering dispatch (retries / timeouts / speculation) --------

    def _fault_event(self, kind: str, tid: int, detail: str,
                     rank: int = 0) -> None:
        if self.sink is None:
            return
        from ..obs.timeline import FaultEvent
        now = perf_counter() - (self._epoch if self._epoch is not None
                                else perf_counter())
        self.sink.on_fault(FaultEvent(kind=kind, time=now, rank=rank,
                                      tid=tid, detail=detail))

    def _launch(self, tid: int, origin: str) -> None:
        st = self._states.get(tid)
        if st is None:
            st = _TaskState(tid)
            self._states[tid] = st
        with self._lock:  # st.cancel is iterated by finishing winners
            a = st.attempts
            st.attempts += 1
            st.live += 1
            st.origin[a] = origin
            st.cancel[a] = threading.Event()
        self._inflight += 1
        self._pool.submit(self._execute_r, tid, a)

    def _retryable(self, exc: BaseException) -> bool:
        from ..resilience.live import (InjectedTransientError,
                                       TileCorruptionDetected)
        if isinstance(exc, (InjectedTransientError, TileCorruptionDetected)):
            return True
        if not isinstance(exc, Exception):
            return False
        if isinstance(exc, (OrderingViolationError, np.linalg.LinAlgError)):
            return False  # deterministic: algorithm-level concern
        if type(exc).__module__.startswith("repro.analysis"):
            return False  # sanitizer findings reproduce identically
        return True

    def _monitor(self, pol, rec) -> None:
        """Timeout + straggler scan over running attempts; launches
        speculative backups for unclaimed attempts (dispatch thread)."""
        from ..obs.timeline import FAULT_SPECULATE, FAULT_TIMEOUT
        now = perf_counter()
        for tid, st in list(self._states.items()):
            if st.finished or st.live == 0:
                continue
            t = self.graph.tasks[tid]
            kind = t.kind.value
            threshold = None
            n = self._kind_n.get(kind, 0)
            if pol.speculation and n >= pol.min_samples:
                threshold = max(
                    pol.straggler_factor * self._kind_t[kind] / n,
                    pol.min_straggler_seconds)
            for a in range(st.attempts):
                if a in st.done_attempts:
                    continue
                started = st.started.get(a)
                if started is None:
                    continue
                age = now - started
                if (pol.task_timeout is not None
                        and age > pol.task_timeout
                        and a not in st.timeout_flagged):
                    st.timeout_flagged.add(a)
                    rec.timeouts += 1
                    self._fault_event(
                        FAULT_TIMEOUT, tid,
                        f"attempt {a} over {pol.task_timeout:.3f}s "
                        f"(age {age:.3f}s)", rank=t.rank)
                    self._maybe_backup(st, rec, t, FAULT_SPECULATE,
                                       f"timeout backup for attempt {a}")
                if (threshold is not None and age > threshold
                        and a not in st.straggler_flagged):
                    st.straggler_flagged.add(a)
                    self._fault_event(
                        FAULT_SPECULATE, tid,
                        f"straggler: attempt {a} at {age:.3f}s vs "
                        f"{threshold:.3f}s threshold", rank=t.rank)
                    self._maybe_backup(st, rec, t, FAULT_SPECULATE,
                                       f"straggler backup for attempt {a}")

    def _maybe_backup(self, st: _TaskState, rec, t: Task,
                      ev_kind: str, detail: str) -> None:
        # Only one backup per task, and only while no attempt has
        # claimed the payload: a claimed payload is already mutating
        # tiles and cannot be duplicated safely.  The racy read of
        # ``claimed`` is benign — a backup that loses the claim just
        # reports itself lost.
        if st.backup_out or st.claimed is not None or st.finished:
            return
        st.backup_out = True
        rec.speculative_duplicates += 1
        self._fault_event(ev_kind, t.tid, detail, rank=t.rank)
        self._launch(st.tid, "backup")

    def _drive_recover(self, tasks, n_window: int, ready: List[int],
                       on_complete) -> Optional[BaseException]:
        from ..obs.timeline import FAULT_RETRY, FAULT_TRANSIENT
        pol = self.recovery_policy
        rec = self.stats.recovery
        plan_seed = self.injector.plan.seed if self.injector is not None else 0
        completed = 0
        failure: Optional[BaseException] = None
        retry_heap: List[Tuple[float, int]] = []  # (due wall time, tid)

        while True:
            now = perf_counter()
            if failure is None:
                while retry_heap and retry_heap[0][0] <= now:
                    _, tid = heapq.heappop(retry_heap)
                    self._launch(tid, "retry")
                while ready and self._inflight < self.workers:
                    self._launch(heapq.heappop(ready), "primary")
            if completed >= n_window and self._inflight == 0:
                break
            if failure is not None and self._inflight == 0:
                break
            if self._inflight == 0 and not ready:
                if failure is None and retry_heap:
                    time.sleep(max(0.0, min(retry_heap[0][0] - now,
                                            pol.poll_interval)))
                    continue
                raise RuntimeError(
                    f"executor stalled with {n_window - completed} task(s) "
                    "unfinished and none ready — dependency bookkeeping "
                    "bug or a graph the validator should have rejected")
            try:
                msg = self._resq.get(timeout=pol.poll_interval)
            except queue.Empty:
                if failure is None:
                    self._monitor(pol, rec)
                continue
            disp, tid, attempt, t0, t1, slot, cpu, exc = msg
            self._inflight -= 1
            st = self._states[tid]
            st.live -= 1
            st.done_attempts.add(attempt)

            if disp == "lost":
                # A losing speculative attempt: it never claimed the
                # payload and made no writes; its slept time is pure
                # recovery overhead.
                rec.reexecution_seconds += max(0.0, t1 - t0)
                continue

            if disp == "done":
                completed += 1
                st.finished = True
                self.fns.pop(tid, None)
                if st.origin.get(attempt) == "backup":
                    rec.speculation_wins += 1
                self._account_done(tasks[tid], t0, t1, slot, cpu)
                if failure is None:
                    on_complete(tid)
                continue

            # disp == "fail"
            rec.reexecution_seconds += max(0.0, t1 - t0)
            from ..resilience.live import InjectedTransientError
            if isinstance(exc, InjectedTransientError):
                rec.transient_failures += 1
                self._fault_event(FAULT_TRANSIENT, tid, str(exc),
                                  rank=tasks[tid].rank)
            if (failure is None and self._retryable(exc)
                    and st.retries_used < pol.max_retries):
                st.retries_used += 1
                rec.retried_tasks += 1
                delay = pol.backoff_seconds(plan_seed, tid, st.retries_used)
                self._fault_event(
                    FAULT_RETRY, tid,
                    f"retry {st.retries_used}/{pol.max_retries} in "
                    f"{delay * 1e3:.2f}ms after {type(exc).__name__}: {exc}",
                    rank=tasks[tid].rank)
                heapq.heappush(retry_heap, (perf_counter() + delay, tid))
            else:
                failure = failure or exc
        return failure

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _slot(self) -> int:
        ident = threading.get_ident()
        slot = self._slot_of_thread.get(ident)
        if slot is None:
            slot = len(self._slot_of_thread)
            self._slot_of_thread[ident] = slot
        return slot

    def _check_in(self, t: Task) -> None:
        """Epoch + concurrent-access assertions; atomic (all checks
        pass before any marking).  Caller holds the lock.  On a retry
        the epoch expectation was already consumed by the first
        attempt, so only the concurrency assertions re-run."""
        writes = set(t.writes)
        for ref, expected in self._expected.pop(t.tid, ()):
            got = self._completed_writer.get(ref)
            if got != expected:
                raise OrderingViolationError(
                    f"task {t.tid} ({t.label or t.kind.value}) touched tile "
                    f"{ref} at the wrong epoch: last completed writer is "
                    f"{got}, program order requires {expected}")
        for ref in t.reads:
            if ref in writes:
                continue
            w = self._writer_active.get(ref)
            if w is not None:
                raise OrderingViolationError(
                    f"task {t.tid} reads tile {ref} while task {w} is "
                    f"writing it (missing RAW/WAR edge)")
        for ref in writes:
            w = self._writer_active.get(ref)
            if w is not None:
                raise OrderingViolationError(
                    f"tasks {w} and {t.tid} write tile {ref} concurrently")
            if self._readers_active.get(ref, 0) > 0:
                raise OrderingViolationError(
                    f"task {t.tid} writes tile {ref} while "
                    f"{self._readers_active[ref]} reader(s) are active")
        for ref in t.reads:
            if ref not in writes:
                self._readers_active[ref] = (
                    self._readers_active.get(ref, 0) + 1)
        for ref in writes:
            self._writer_active[ref] = t.tid

    def _check_out(self, t: Task) -> None:
        """Release in-flight marks and advance tile epochs."""
        writes = set(t.writes)
        for ref in t.reads:
            if ref not in writes:
                left = self._readers_active.get(ref, 1) - 1
                if left:
                    self._readers_active[ref] = left
                else:
                    self._readers_active.pop(ref, None)
        for ref in writes:
            self._writer_active.pop(ref, None)
            self._completed_writer[ref] = t.tid
        self._done[t.tid] = True

    def _release(self, t: Task) -> None:
        """Drop a failed attempt's in-flight marks without advancing
        any epoch (the retry re-acquires them).  Caller holds the
        lock."""
        writes = set(t.writes)
        for ref in t.reads:
            if ref not in writes:
                left = self._readers_active.get(ref, 1) - 1
                if left:
                    self._readers_active[ref] = left
                else:
                    self._readers_active.pop(ref, None)
        for ref in writes:
            if self._writer_active.get(ref) == t.tid:
                self._writer_active.pop(ref)

    def _count(self, kind: TaskKind) -> None:
        counter = self._counters.get(kind)
        if counter is None:
            from ..obs.metrics import get_registry
            counter = get_registry().counter(
                f"kernel.invocations.{kind.value}")
            self._counters[kind] = counter
        counter.inc()

    def _execute(self, tid: int) -> None:
        """Fail-fast worker (no recovery configured)."""
        t = self.graph.tasks[tid]
        slot = t0 = t1 = 0
        cpu = 0.0
        try:
            with self._lock:
                slot = self._slot()
                self._check_in(t)
            fn = self.fns.pop(tid, None)
            t0 = perf_counter() - self._epoch
            if fn is not None:
                c0 = time.thread_time()
                san = self.sanitizer
                if san is not None and t.sanitize:
                    with san.task_scope(t):
                        fn()
                else:
                    fn()
                cpu = time.thread_time() - c0
                self._count(t.kind)
            t1 = perf_counter() - self._epoch
            with self._lock:
                self._check_out(t)
        except BaseException as exc:  # propagated by the dispatch loop
            self._resq.put(("fail", tid, 0, float(t0), float(t1), slot,
                            cpu, exc))
            return
        self._resq.put(("done", tid, 0, t0, t1, slot, cpu, None))

    def _run_payload(self, t: Task, fn) -> None:
        san = self.sanitizer
        if san is not None and t.sanitize:
            with san.task_scope(t):
                fn()
        else:
            fn()

    def _execute_r(self, tid: int, attempt: int) -> None:
        """Recovering worker: stall injection, payload claim,
        snapshot/restore, transient/corruption injection, scrubbing."""
        from ..obs.timeline import FAULT_CORRUPTION, FAULT_STALL
        from ..resilience.live import (InjectedTransientError,
                                       TileCorruptionDetected)
        t = self.graph.tasks[tid]
        st = self._states[tid]
        pol = self.recovery_policy
        slot = 0
        t0 = t1 = cpu = 0.0
        marked = False
        t_entry = perf_counter()
        try:
            with self._lock:
                slot = self._slot()
                st.started[attempt] = t_entry
            # Injected stall: interruptible pre-claim sleep.  If the
            # payload gets claimed meanwhile, the winner wakes us and
            # we report lost without touching any tile.
            if self.injector is not None:
                stall = self.injector.stall_seconds(tid, t.kind.value,
                                                    attempt)
                if stall > 0.0:
                    with self._lock:
                        self.stats.recovery.injected_stalls += 1
                    self._fault_event(
                        FAULT_STALL, tid,
                        f"injected stall {stall * 1e3:.0f}ms "
                        f"(attempt {attempt})", rank=t.rank)
                    st.cancel[attempt].wait(timeout=stall)
            # Claim the payload (first claimer wins).
            with self._lock:
                if st.finished or st.claimed is not None:
                    lost = True
                else:
                    st.claimed = attempt
                    lost = False
            if lost:
                self._resq.put(("lost", tid, attempt, t_entry,
                                perf_counter(), slot, 0.0, None))
                return
            with self._lock:
                self._check_in(t)
            marked = True
            fn = self.fns.get(tid)
            # Write-tile snapshot before the first payload execution;
            # restore before a re-execution (payloads mutate in place).
            if fn is not None and self.tiles is not None \
                    and pol.max_retries > 0:
                if not st.snapshot_taken:
                    st.snapshot_taken = True
                    st.snapshot = self.tiles.snapshot(t.writes)
                elif st.payload_ran and st.snapshot is not None:
                    self.tiles.restore(st.snapshot)
            if (self.injector is not None
                    and fn is not None
                    and self.injector.transient_fires(tid, attempt)):
                raise InjectedTransientError(
                    f"injected transient on task {tid} attempt {attempt}")
            t0 = perf_counter() - self._epoch
            if fn is not None:
                st.payload_ran = True
                c0 = time.thread_time()
                self._run_payload(t, fn)
                cpu = time.thread_time() - c0
                injected_corruption = False
                if self.injector is not None and self.tiles is not None:
                    corr = self.injector.corruption_for(
                        tid, t.kind.value, attempt, len(t.writes))
                    if corr is not None:
                        ref = t.writes[corr[0]]
                        if self.tiles.corrupt(ref, corr[1]):
                            injected_corruption = True
                            with self._lock:
                                self.stats.recovery.corrupted_tiles += 1
                            self._fault_event(
                                FAULT_CORRUPTION, tid,
                                f"injected {corr[1]} into tile {ref}",
                                rank=t.rank)
                if pol.scrub_writes and self.tiles is not None:
                    bad = self.tiles.nonfinite(t.writes)
                    if bad:
                        if not injected_corruption:
                            with self._lock:
                                self.stats.recovery.corrupted_tiles += 1
                            self._fault_event(
                                FAULT_CORRUPTION, tid,
                                f"non-finite output tiles {bad}",
                                rank=t.rank)
                        raise TileCorruptionDetected(
                            f"task {tid} produced non-finite tiles {bad}")
                self._count(t.kind)
            t1 = perf_counter() - self._epoch
            with self._lock:
                self._check_out(t)
                st.finished = True
        except BaseException as exc:
            with self._lock:
                if marked:
                    self._release(t)
                if st.claimed == attempt:
                    st.claimed = None
            end = perf_counter() - self._epoch
            start = t0 if t0 > 0.0 else t_entry - self._epoch
            self._resq.put(("fail", tid, attempt, float(start),
                            float(end), slot, cpu, exc))
            return
        # Wake any attempt still sleeping in an injected stall so the
        # window drains promptly (they lose the claim and report lost).
        with self._lock:
            evs = list(st.cancel.values())
        for ev in evs:
            ev.set()
        self._resq.put(("done", tid, attempt, t0, t1, slot, cpu, None))
