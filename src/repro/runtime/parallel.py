"""Real threaded execution of recorded task graphs.

Everything else in :mod:`repro.runtime` *simulates* concurrency; this
module actually runs it.  A :class:`ParallelExecutor` replays a
recorded :class:`~repro.runtime.graph.TaskGraph` on a
``concurrent.futures.ThreadPoolExecutor``: tasks are dispatched as
their dependency counts drain, exactly the dataflow execution SLATE
gets from OpenMP ``task depend``.  NumPy/BLAS kernels release the GIL,
so independent tiles genuinely overlap on multicore hosts.

Guarantees and safety nets:

* **Dependency order** — a task starts only after every recorded
  dependency finished.  The dispatch ready-queue is a min-heap on task
  id, so a single-worker run executes in exact program order and is
  bit-identical to eager execution.
* **Lookahead window** — like the schedule simulator, an optional
  ``lookahead`` bounds how many program phases past the completed
  prefix may enter the ready queue (SLATE's bounded lookahead panels);
  ``None`` leaves dataflow order unconstrained.
* **Epoch / last-writer assertions** — before a task touches its
  tiles, the executor checks (under a lock) that every tile it reads
  or overwrites was last written by exactly the task program order
  says (the tile's *epoch*), and that no concurrent reader/writer is
  in flight.  Any scheduling bug that would corrupt data surfaces as
  an :class:`OrderingViolationError` at execution time instead of as a
  silently wrong result.
* **Measured timeline** — with a ``sink``
  (:class:`repro.obs.timeline.TraceSink`) attached, every execution
  emits a :class:`~repro.obs.timeline.TaskEvent` carrying *real*
  ``perf_counter`` start/finish timestamps, flagged ``measured=True``.
  The schema matches simulated traces, so Chrome-trace export, the
  ASCII Gantt, and stall attribution work unchanged on real runs.

The executor runs *windows* of an append-only graph: a deferred
:class:`~repro.runtime.executor.Runtime` records payload closures and
calls :meth:`ParallelExecutor.run` at every synchronization point
(scalar reduction reads, ``to_array`` gathers), so adaptive numeric
algorithms keep their data-dependent control flow while every window
executes with real concurrency.
"""

from __future__ import annotations

import heapq
import os
import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from .graph import TaskGraph
from .task import Task, TaskKind, TileRef

__all__ = ["ParallelExecutor", "ExecutionStats", "OrderingViolationError",
           "default_workers"]


class OrderingViolationError(RuntimeError):
    """A task touched a tile out of the recorded dependency order."""


def default_workers() -> int:
    """Worker-count default: one thread per core."""
    return max(1, os.cpu_count() or 1)


@dataclass
class ExecutionStats:
    """Accumulated accounting of a :class:`ParallelExecutor`."""

    workers: int = 1
    tasks_run: int = 0
    windows: int = 0
    #: Wall-clock seconds spent inside :meth:`ParallelExecutor.run`
    #: (the measured makespan across all execution windows).
    wall_seconds: float = 0.0
    #: Summed per-task execution seconds (over all worker threads);
    #: ``busy_seconds / (wall_seconds * workers)`` is the measured
    #: parallel utilization.
    busy_seconds: float = 0.0
    per_kind_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        denom = self.wall_seconds * max(self.workers, 1)
        return self.busy_seconds / denom if denom > 0.0 else 0.0


class ParallelExecutor:
    """Replay a recorded task graph on a thread pool.

    Parameters
    ----------
    graph:
        The (append-only) task graph.  Windows of it are executed by
        successive :meth:`run` calls; tasks before a window's start are
        assumed already executed (eagerly or by a previous window).
    fns:
        ``tid -> payload closure``.  Tasks without a payload (symbolic
        graphs, pure-metadata tasks) are ordering no-ops: they respect
        and propagate dependencies but execute nothing and publish no
        kernel metrics — replaying an eagerly-executed or symbolic
        graph never double-counts kernel invocations.
    workers:
        Thread-pool size (default: one per core).  ``workers=1``
        executes in exact program order.
    lookahead:
        Optional phase-window bound on the ready queue (``None`` =
        unbounded dataflow order, like SLATE's default).
    sink:
        Optional :class:`repro.obs.timeline.TraceSink` receiving
        measured :class:`TaskEvent`s.
    validate:
        Run :meth:`TaskGraph.validate` over each window before
        executing it (cycle/forward-edge/concurrent-writer checks).
    sanitizer:
        Optional :class:`repro.analysis.sanitizer.TileSanitizer`; each
        payload runs inside a sanitizer frame on its worker thread, so
        actual tile accesses are diffed against the declared footprint
        exactly as in eager mode.
    """

    def __init__(self, graph: TaskGraph,
                 fns: Optional[Dict[int, Callable[[], None]]] = None, *,
                 workers: Optional[int] = None,
                 lookahead: Optional[int] = None,
                 sink=None,
                 validate: bool = True,
                 sanitizer=None) -> None:
        self.graph = graph
        self.fns = {} if fns is None else fns
        self.workers = max(1, int(workers) if workers else default_workers())
        self.lookahead = lookahead
        self.sink = sink
        self.validate = validate
        self.sanitizer = sanitizer
        self.stats = ExecutionStats(workers=self.workers)
        if validate:
            graph.validate()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        self._resq: "queue.Queue[Tuple[int, float, float, int, Optional[BaseException]]]" = queue.Queue()
        #: Tasks whose effects are visible (executed here or accounted
        #: as an eager/pre-window execution).
        self._done: Dict[int, bool] = {}
        #: Tile epoch table: ref -> tid of the last *completed* writer.
        self._completed_writer: Dict[TileRef, int] = {}
        #: In-flight access tracking for the race assertions.
        self._writer_active: Dict[TileRef, int] = {}
        self._readers_active: Dict[TileRef, int] = {}
        #: Program-order expectation per task: ((ref, last_writer), ...)
        #: over the task's reads and writes, filled by ``_prepare``.
        self._expected: Dict[int, Tuple[Tuple[TileRef, Optional[int]], ...]] = {}
        self._prep_last_writer: Dict[TileRef, int] = {}
        self._prep_cursor = 0
        #: First tid not yet accounted for (executed or external).
        self._floor = 0
        self._epoch: Optional[float] = None
        self._slot_of_thread: Dict[int, int] = {}
        self._counters: Dict[TaskKind, object] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec")
        return self._pool

    # ------------------------------------------------------------------
    # Window preparation
    # ------------------------------------------------------------------

    def _prepare(self, end: int) -> None:
        """Extend the program-order epoch expectations up to ``end``."""
        tasks = self.graph.tasks
        for tid in range(self._prep_cursor, end):
            t = tasks[tid]
            exp = []
            seen = set()
            for ref in t.reads + t.writes:
                if ref in seen:
                    continue
                seen.add(ref)
                exp.append((ref, self._prep_last_writer.get(ref)))
            self._expected[tid] = tuple(exp)
            for ref in t.writes:
                self._prep_last_writer[ref] = tid
        self._prep_cursor = max(self._prep_cursor, end)

    def _account_external(self, upto: int) -> None:
        """Tasks in ``[floor, upto)`` ran outside this executor (eager
        prefix before deferral was enabled); fold their effects into
        the epoch tables so later windows see consistent state."""
        tasks = self.graph.tasks
        for tid in range(self._floor, upto):
            self._done[tid] = True
            self._expected.pop(tid, None)
            for ref in tasks[tid].writes:
                self._completed_writer[ref] = tid
        self._floor = max(self._floor, upto)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def run(self, start: int = 0, end: Optional[int] = None) -> float:
        """Execute tasks ``[start, end)``; returns the window's wall
        seconds.  Dependencies on tasks before ``start`` are treated as
        satisfied (they executed in a previous window or eagerly)."""
        tasks = self.graph.tasks
        if end is None:
            end = len(tasks)
        if self.validate:
            self.graph.validate(end)
        self._prepare(end)
        if start > self._floor:
            self._account_external(start)
        if end <= start:
            return 0.0
        self._floor = end

        # Window-local dependency bookkeeping.
        indeg: Dict[int, int] = {}
        succ: Dict[int, List[int]] = {}
        for tid in range(start, end):
            cnt = 0
            for d in tasks[tid].deps:
                if d >= start and not self._done.get(d, False):
                    succ.setdefault(d, []).append(tid)
                    cnt += 1
            indeg[tid] = cnt

        # Lookahead gate over program phases (panel steps).
        phase_remaining: Dict[int, int] = {}
        for tid in range(start, end):
            p = tasks[tid].phase
            phase_remaining[p] = phase_remaining.get(p, 0) + 1
        phases = sorted(phase_remaining)
        prefix_idx = 0  # index into `phases` of the oldest open phase

        def gate_open(p: int) -> bool:
            if self.lookahead is None:
                return True
            prefix = phases[prefix_idx] if prefix_idx < len(phases) else p
            return p <= prefix + self.lookahead

        ready: List[int] = []
        parked: Dict[int, List[int]] = {}

        def make_eligible(tid: int) -> None:
            p = tasks[tid].phase
            if gate_open(p):
                heapq.heappush(ready, tid)
            else:
                parked.setdefault(p, []).append(tid)

        for tid in range(start, end):
            if indeg[tid] == 0:
                make_eligible(tid)

        pool = self._ensure_pool()
        t_wall0 = perf_counter()
        if self._epoch is None:
            self._epoch = t_wall0
        inflight = 0
        completed = 0
        n_window = end - start
        failure: Optional[BaseException] = None

        while completed < n_window:
            while ready and inflight < self.workers and failure is None:
                tid = heapq.heappop(ready)
                pool.submit(self._execute, tid)
                inflight += 1
            if inflight == 0:
                if failure is not None:
                    break
                raise RuntimeError(
                    f"executor stalled with {n_window - completed} task(s) "
                    "unfinished and none ready — dependency bookkeeping "
                    "bug or a graph the validator should have rejected")
            tid, t0, t1, slot, exc = self._resq.get()
            inflight -= 1
            completed += 1
            if exc is not None:
                failure = failure or exc
                continue
            t = tasks[tid]
            dur = t1 - t0
            self.stats.tasks_run += 1
            self.stats.busy_seconds += dur
            kind = t.kind.value
            self.stats.per_kind_seconds[kind] = (
                self.stats.per_kind_seconds.get(kind, 0.0) + dur)
            if self.sink is not None:
                from ..obs.timeline import TaskEvent
                self.sink.on_task(TaskEvent(
                    tid=t.tid, kind=kind, rank=t.rank, slot=f"thr{slot}",
                    phase=t.phase, flops=t.flops, start=t0, end=t1,
                    duration=dur, label=t.label, measured=True))
            if failure is not None:
                continue
            for s in succ.get(tid, ()):
                indeg[s] -= 1
                if indeg[s] == 0:
                    make_eligible(s)
            p = t.phase
            phase_remaining[p] -= 1
            if phase_remaining[p] == 0:
                while (prefix_idx < len(phases)
                       and phase_remaining[phases[prefix_idx]] == 0):
                    prefix_idx += 1
                if self.lookahead is not None:
                    limit = ((phases[prefix_idx] if prefix_idx < len(phases)
                              else p) + self.lookahead)
                    for pp in [q for q in parked if q <= limit]:
                        for tid2 in parked.pop(pp):
                            heapq.heappush(ready, tid2)

        wall = perf_counter() - t_wall0
        self.stats.wall_seconds += wall
        self.stats.windows += 1
        if failure is not None:
            raise failure
        return wall

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _slot(self) -> int:
        ident = threading.get_ident()
        slot = self._slot_of_thread.get(ident)
        if slot is None:
            slot = len(self._slot_of_thread)
            self._slot_of_thread[ident] = slot
        return slot

    def _check_in(self, t: Task) -> None:
        """Epoch + concurrent-access assertions; atomic (all checks
        pass before any marking).  Caller holds the lock."""
        writes = set(t.writes)
        for ref, expected in self._expected.pop(t.tid, ()):
            got = self._completed_writer.get(ref)
            if got != expected:
                raise OrderingViolationError(
                    f"task {t.tid} ({t.label or t.kind.value}) touched tile "
                    f"{ref} at the wrong epoch: last completed writer is "
                    f"{got}, program order requires {expected}")
        for ref in t.reads:
            if ref in writes:
                continue
            w = self._writer_active.get(ref)
            if w is not None:
                raise OrderingViolationError(
                    f"task {t.tid} reads tile {ref} while task {w} is "
                    f"writing it (missing RAW/WAR edge)")
        for ref in writes:
            w = self._writer_active.get(ref)
            if w is not None:
                raise OrderingViolationError(
                    f"tasks {w} and {t.tid} write tile {ref} concurrently")
            if self._readers_active.get(ref, 0) > 0:
                raise OrderingViolationError(
                    f"task {t.tid} writes tile {ref} while "
                    f"{self._readers_active[ref]} reader(s) are active")
        for ref in t.reads:
            if ref not in writes:
                self._readers_active[ref] = (
                    self._readers_active.get(ref, 0) + 1)
        for ref in writes:
            self._writer_active[ref] = t.tid

    def _check_out(self, t: Task) -> None:
        """Release in-flight marks and advance tile epochs."""
        writes = set(t.writes)
        for ref in t.reads:
            if ref not in writes:
                left = self._readers_active.get(ref, 1) - 1
                if left:
                    self._readers_active[ref] = left
                else:
                    self._readers_active.pop(ref, None)
        for ref in writes:
            self._writer_active.pop(ref, None)
            self._completed_writer[ref] = t.tid
        self._done[t.tid] = True

    def _count(self, kind: TaskKind) -> None:
        counter = self._counters.get(kind)
        if counter is None:
            from ..obs.metrics import get_registry
            counter = get_registry().counter(
                f"kernel.invocations.{kind.value}")
            self._counters[kind] = counter
        counter.inc()

    def _execute(self, tid: int) -> None:
        t = self.graph.tasks[tid]
        slot = t0 = t1 = 0
        try:
            with self._lock:
                slot = self._slot()
                self._check_in(t)
            fn = self.fns.pop(tid, None)
            t0 = perf_counter() - self._epoch
            if fn is not None:
                san = self.sanitizer
                if san is not None and t.sanitize:
                    with san.task_scope(t):
                        fn()
                else:
                    fn()
                self._count(t.kind)
            t1 = perf_counter() - self._epoch
            with self._lock:
                self._check_out(t)
        except BaseException as exc:  # propagated by the dispatch loop
            self._resq.put((tid, float(t0), float(t1), slot, exc))
            return
        self._resq.put((tid, t0, t1, slot, None))
