"""Communication counters for a simulated run.

Accumulated by the scheduler per transfer path; the gemmA and GPU-aware
MPI ablations read these to compare communication volume, not just
wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .network import TransferPath


@dataclass
class CommCounters:
    """Message and byte totals per transfer path."""

    messages: Dict[TransferPath, int] = field(
        default_factory=lambda: {p: 0 for p in TransferPath})
    bytes: Dict[TransferPath, int] = field(
        default_factory=lambda: {p: 0 for p in TransferPath})

    def record(self, path: TransferPath, nbytes: int) -> None:
        if path is TransferPath.LOCAL:
            return
        self.messages[path] += 1
        self.bytes[path] += nbytes

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    @property
    def inter_node_bytes(self) -> int:
        return self.bytes[TransferPath.INTER_NODE]

    @property
    def staging_bytes(self) -> int:
        """Bytes moved across the CPU-GPU boundary (H2D + D2H)."""
        return self.bytes[TransferPath.H2D] + self.bytes[TransferPath.D2H]

    def merged(self, other: "CommCounters") -> "CommCounters":
        out = CommCounters()
        for p in TransferPath:
            out.messages[p] = self.messages[p] + other.messages[p]
            out.bytes[p] = self.bytes[p] + other.bytes[p]
        return out

    def __iadd__(self, other: "CommCounters") -> "CommCounters":
        """In-place merge (accumulating counters across runs)."""
        for p in TransferPath:
            self.messages[p] += other.messages[p]
            self.bytes[p] += other.bytes[p]
        return self

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """JSON-friendly view for reports."""
        return {
            "messages": {p.value: v for p, v in self.messages.items() if v},
            "bytes": {p.value: v for p, v in self.bytes.items() if v},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Dict[str, int]]) -> "CommCounters":
        """Inverse of :meth:`as_dict` (round-trips archived reports)."""
        out = cls()
        known = {p.value: p for p in TransferPath}
        for table_name, table in (("messages", out.messages),
                                  ("bytes", out.bytes)):
            for name, value in data.get(table_name, {}).items():
                path = known.get(name)
                if path is None:
                    raise ValueError(f"unknown transfer path {name!r}")
                table[path] = int(value)
        return out

    def publish(self, registry, prefix: str = "comm") -> None:
        """Merge these totals into a metrics registry snapshot.

        Adds ``{prefix}.messages.{path}`` / ``{prefix}.bytes.{path}``
        counters (only for non-zero paths) to the given
        :class:`repro.obs.metrics.Registry`.
        """
        for p in TransferPath:
            if self.messages[p]:
                registry.counter(
                    f"{prefix}.messages.{p.value}").inc(self.messages[p])
            if self.bytes[p]:
                registry.counter(
                    f"{prefix}.bytes.{p.value}").inc(self.bytes[p])
