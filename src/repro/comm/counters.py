"""Communication counters for a simulated run.

Accumulated by the scheduler per transfer path; the gemmA and GPU-aware
MPI ablations read these to compare communication volume, not just
wall time.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict

from .network import TransferPath


@dataclass
class CommCounters:
    """Message and byte totals per transfer path."""

    messages: Dict[TransferPath, int] = field(
        default_factory=lambda: {p: 0 for p in TransferPath})
    bytes: Dict[TransferPath, int] = field(
        default_factory=lambda: {p: 0 for p in TransferPath})
    #: Totals already published, per live registry (held weakly: a
    #: collected registry's entry dies with it instead of aliasing a
    #: new registry allocated at the same address, which would
    #: under-report the first publish to the newcomer) and prefix —
    #: makes :meth:`publish` idempotent (see there).  Not part of the
    #: value.
    _published: "weakref.WeakKeyDictionary" = field(
        default_factory=weakref.WeakKeyDictionary, repr=False,
        compare=False)

    def record(self, path: TransferPath, nbytes: int) -> None:
        if path is TransferPath.LOCAL:
            return
        self.messages[path] += 1
        self.bytes[path] += nbytes

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    @property
    def inter_node_bytes(self) -> int:
        return self.bytes[TransferPath.INTER_NODE]

    @property
    def staging_bytes(self) -> int:
        """Bytes moved across the CPU-GPU boundary (H2D + D2H)."""
        return self.bytes[TransferPath.H2D] + self.bytes[TransferPath.D2H]

    def merged(self, other: "CommCounters") -> "CommCounters":
        out = CommCounters()
        for p in TransferPath:
            out.messages[p] = self.messages[p] + other.messages[p]
            out.bytes[p] = self.bytes[p] + other.bytes[p]
        return out

    def __iadd__(self, other: "CommCounters") -> "CommCounters":
        """In-place merge (accumulating counters across runs)."""
        for p in TransferPath:
            self.messages[p] += other.messages[p]
            self.bytes[p] += other.bytes[p]
        return self

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """JSON-friendly view for reports."""
        return {
            "messages": {p.value: v for p, v in self.messages.items() if v},
            "bytes": {p.value: v for p, v in self.bytes.items() if v},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Dict[str, int]]) -> "CommCounters":
        """Inverse of :meth:`as_dict` (round-trips archived reports)."""
        out = cls()
        known = {p.value: p for p in TransferPath}
        for table_name, table in (("messages", out.messages),
                                  ("bytes", out.bytes)):
            for name, value in data.get(table_name, {}).items():
                path = known.get(name)
                if path is None:
                    raise ValueError(f"unknown transfer path {name!r}")
                table[path] = int(value)
        return out

    def publish(self, registry, prefix: str = "comm") -> None:
        """Merge these totals into a metrics registry snapshot.

        Adds ``{prefix}.messages.{path}`` / ``{prefix}.bytes.{path}``
        counters (only for non-zero paths) to the given
        :class:`repro.obs.metrics.Registry`.

        Idempotent per (registry, prefix): only growth since the last
        publish of *this* counter object is added, so publishing the
        same totals twice (a report path calling through two layers
        that both publish) cannot double-count, while counters that
        kept accumulating between calls publish exactly their delta.
        """
        per_registry = self._published.get(registry)
        if per_registry is None:
            per_registry = self._published[registry] = {}
        seen = per_registry.setdefault(
            prefix,
            {"messages": {p: 0 for p in TransferPath},
             "bytes": {p: 0 for p in TransferPath}})
        for p in TransferPath:
            dm = self.messages[p] - seen["messages"][p]
            if dm:
                registry.counter(f"{prefix}.messages.{p.value}").inc(dm)
                seen["messages"][p] = self.messages[p]
            db = self.bytes[p] - seen["bytes"][p]
            if db:
                registry.counter(f"{prefix}.bytes.{p.value}").inc(db)
                seen["bytes"][p] = self.bytes[p]
