"""Cost models for MPI collectives (tree algorithms).

Used for the scalar reductions in QDWH (norm estimates, convergence
checks) and the fork-join barrier penalty of the ScaLAPACK execution
model.  Standard formulas:

* binomial-tree broadcast / reduce: ``ceil(log2 P) * (alpha + n/beta)``
* recursive-doubling allreduce:    ``log2 P * alpha + 2 n/beta`` (small n)
* barrier (dissemination):         ``ceil(log2 P) * alpha``
"""

from __future__ import annotations

import math

from .network import NetworkModel, TransferPath


def _log2ceil(p: int) -> int:
    if p < 1:
        raise ValueError(f"need >= 1 ranks, got {p}")
    return max(0, math.ceil(math.log2(p)))


def bcast_time(net: NetworkModel, nbytes: int, ranks: int,
               inter_node: bool = True) -> float:
    """Binomial-tree broadcast of one buffer to ``ranks`` ranks."""
    path = TransferPath.INTER_NODE if inter_node else TransferPath.INTRA_NODE
    return _log2ceil(ranks) * net.transfer_time(nbytes, path)


def reduce_time(net: NetworkModel, nbytes: int, ranks: int,
                inter_node: bool = True) -> float:
    """Binomial-tree reduction (same wire pattern as broadcast)."""
    return bcast_time(net, nbytes, ranks, inter_node)


def allreduce_time(net: NetworkModel, nbytes: int, ranks: int,
                   inter_node: bool = True) -> float:
    """Recursive-doubling allreduce (latency-dominated for scalars)."""
    if ranks == 1:
        return 0.0
    path = TransferPath.INTER_NODE if inter_node else TransferPath.INTRA_NODE
    steps = _log2ceil(ranks)
    lat = net.inter_latency if inter_node else net.intra_latency
    bw = net.inter_bandwidth if inter_node else net.intra_bandwidth
    del path
    return steps * lat + 2.0 * nbytes / bw


def barrier_time(net: NetworkModel, ranks: int,
                 inter_node: bool = True) -> float:
    """Dissemination barrier: log2(P) zero-byte rounds."""
    if ranks == 1:
        return 0.0
    lat = net.inter_latency if inter_node else net.intra_latency
    return _log2ceil(ranks) * lat
