"""Alpha-beta network model with NIC placement.

Transfer cost between ranks: ``alpha + bytes / beta`` with different
(alpha, beta) for intra-node (shared memory / Infinity Fabric / NVLink)
and inter-node (InfiniBand / Slingshot) paths.

NIC placement is the paper's Section 7.2 point: on Frontier the NICs
attach to the GPUs, so GPU-aware MPI moves GPU-resident tiles straight
to the wire; on Summit the NICs attach to the CPUs, so a GPU tile pays
D2H before the wire and H2D after it, whether MPI hides that staging
or not.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TransferPath(enum.Enum):
    """Where a tile moves."""

    LOCAL = "local"              # same rank, same device
    H2D = "h2d"                  # host -> device within a rank
    D2H = "d2h"                  # device -> host within a rank
    INTRA_NODE = "intra_node"    # different rank, same node
    INTER_NODE = "inter_node"    # different node


@dataclass(frozen=True)
class NetworkModel:
    """Link parameters of one machine.

    Bandwidths in bytes/s, latencies in seconds.  ``nic_on_gpu=True``
    (Frontier) lets GPU-resident tiles reach the network without
    staging; ``False`` (Summit) adds the D2H/H2D hops around every
    inter-node transfer touching GPU memory.
    """

    inter_latency: float = 2.0e-6
    inter_bandwidth: float = 12.5e9
    intra_latency: float = 0.7e-6
    intra_bandwidth: float = 50.0e9
    h2d_latency: float = 5.0e-6
    h2d_bandwidth: float = 40.0e9
    nic_on_gpu: bool = False

    def transfer_time(self, nbytes: int, path: TransferPath) -> float:
        """Time for one message of ``nbytes`` along ``path``."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if path is TransferPath.LOCAL:
            return 0.0
        if path in (TransferPath.H2D, TransferPath.D2H):
            return self.h2d_latency + nbytes / self.h2d_bandwidth
        if path is TransferPath.INTRA_NODE:
            return self.intra_latency + nbytes / self.intra_bandwidth
        return self.inter_latency + nbytes / self.inter_bandwidth

    def remote_gpu_transfer_time(self, nbytes: int, same_node: bool,
                                 src_on_gpu: bool, dst_on_gpu: bool) -> float:
        """Rank-to-rank transfer including NIC-placement staging.

        Models the full path of a tile from ``src`` memory space to
        ``dst`` memory space across ranks, adding D2H/H2D staging hops
        whenever the wire cannot see GPU memory directly.
        """
        path = TransferPath.INTRA_NODE if same_node else TransferPath.INTER_NODE
        t = self.transfer_time(nbytes, path)
        if same_node:
            # Intra-node GPU<->GPU moves ride NVLink/Infinity Fabric,
            # already captured by the intra-node link parameters.
            return t
        if not self.nic_on_gpu:
            if src_on_gpu:
                t += self.transfer_time(nbytes, TransferPath.D2H)
            if dst_on_gpu:
                t += self.transfer_time(nbytes, TransferPath.H2D)
        return t
