"""Communication modeling: alpha-beta links, collectives, counters.

The simulated analogue of MPI + GPU-aware interconnects.  Transfer
times feed the schedule simulation; message/byte counters feed the
communication-volume analyses (gemmA ablation, GPU-aware MPI ablation).
"""

from .network import NetworkModel, TransferPath
from .collectives import (
    bcast_time,
    reduce_time,
    allreduce_time,
    barrier_time,
)
from .counters import CommCounters

__all__ = [
    "NetworkModel",
    "TransferPath",
    "bcast_time",
    "reduce_time",
    "allreduce_time",
    "barrier_time",
    "CommCounters",
]
