"""Command-line interface.

Subcommands, mirroring how a downstream user would drive the library:

* ``repro polar FILE.npy``      — decompose a matrix from disk.
* ``repro simulate``            — one performance point on a machine model.
* ``repro trace``               — simulate a point and export its timeline
  (Chrome/Perfetto trace, terminal Gantt, metrics snapshot).
* ``repro sweep``               — a figure-style size sweep.
* ``repro faults``              — fault-injected run vs. fault-free baseline,
  recovery accounting, and the Young/Daly checkpoint trade-off;
  ``--live`` runs the plan inside a real threaded QDWH instead of the
  simulator and gates on convergence + zero leaked attempts.
* ``repro memory``              — feasibility limits from the footprint model.
* ``repro bench``               — run the fixed perf-trajectory suite, write
  versioned ``BENCH_*.json``, or compare two of them (``--compare``) with
  improvement/noise/regression classification.
* ``repro validate``            — run the acceptance matrix (paper claims).

Run ``python -m repro.cli --help`` (or the ``repro`` console script).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

import numpy as np


def _machine(name: str):
    from .machines import aurora, frontier, summit

    try:
        return {"summit": summit, "frontier": frontier,
                "aurora": aurora}[name]()
    except KeyError:
        raise SystemExit(f"unknown machine {name!r}; "
                         f"expected summit, frontier, or aurora") from None


def _dump_metrics(path: str) -> None:
    import json

    from .obs import get_registry

    with open(path, "w") as fh:
        json.dump(get_registry().snapshot(), fh, indent=2, sort_keys=True)
    print(f"metrics snapshot written to {path}")


def _fault_plan_from_args(args: argparse.Namespace, ranks: int,
                          horizon: float):
    """FaultPlan from the CLI flags (file > compact specs > MTTF)."""
    from .resilience import FaultPlan, plan_from_spec

    if getattr(args, "fault_plan", None):
        return FaultPlan.from_json(args.fault_plan)
    if getattr(args, "mttf", None):
        return FaultPlan.poisson_crashes(
            args.mttf, horizon, ranks, seed=args.fault_seed)
    plan = plan_from_spec(
        seed=args.fault_seed,
        crash=getattr(args, "crash", None) or (),
        transient_p=getattr(args, "transient_p", 0.0),
        max_attempts=getattr(args, "max_attempts", 4),
        straggler=getattr(args, "straggler", None) or (),
        link_factor=getattr(args, "link_factor", 1.0),
        speculation=not getattr(args, "no_speculation", False),
        stall_p=getattr(args, "stall_p", 0.0),
        stall_seconds=getattr(args, "stall_seconds", 0.25),
        corrupt_p=getattr(args, "corrupt_p", 0.0))
    return None if plan.empty else plan


def _print_recovery(schedule) -> None:
    rec = schedule.recovery
    if rec is None:
        return
    print(f"  recovery:  {rec.crashes} crash(es) "
          f"(dead ranks {list(rec.dead_ranks) or '-'}), "
          f"{rec.replayed_tasks} replayed, "
          f"{rec.revoked_inflight} revoked in-flight, "
          f"{rec.lost_tiles} tiles lost")
    print(f"             {rec.transient_failures} transient failure(s) "
          f"over {rec.retried_tasks} task(s), "
          f"{rec.speculative_duplicates} speculative duplicate(s) "
          f"({rec.speculation_wins} won), "
          f"{rec.degraded_transfers} degraded transfer(s)")
    print(f"             {rec.reexecution_seconds:.3f} s re-executed, "
          f"{rec.recovery_bytes / 2**20:.1f} MiB recovery traffic")


def _polar_input(args: argparse.Namespace) -> np.ndarray:
    """The input matrix: a .npy file or a generated test problem."""
    if args.generate is not None and args.matrix:
        raise SystemExit("give a matrix file or --generate N, not both")
    if args.generate is None:
        if not args.matrix:
            raise SystemExit("a matrix file or --generate N is required")
        a = np.load(args.matrix)
        if a.ndim != 2:
            raise SystemExit(f"{args.matrix} does not hold a matrix")
        return a
    from .matrices.generator import generate_matrix

    return generate_matrix(args.generate, cond=args.cond,
                           dtype=np.dtype(args.dtype), seed=args.seed)


def _live_recovery_from_args(args: argparse.Namespace, fault_plan):
    """RecoveryPolicy from the polar/faults live-execution flags."""
    if (getattr(args, "retries", None) is None
            and getattr(args, "task_timeout", None) is None
            and fault_plan is None):
        return None
    from .resilience.live import RecoveryPolicy

    kw = {}
    if getattr(args, "retries", None) is not None:
        kw["max_retries"] = args.retries
    if getattr(args, "task_timeout", None) is not None:
        kw["task_timeout"] = args.task_timeout
    if fault_plan is not None:
        kw["scrub_writes"] = bool(fault_plan.corruptions)
    return RecoveryPolicy(**kw)


def _polar_tiled(args: argparse.Namespace, a: np.ndarray) -> int:
    """``repro polar --backend eager|threads|processes``: tiled QDWH."""
    import time

    from . import polar_report
    from .core.tiled_qdwh import tiled_qdwh
    from .dist.grid import ProcessGrid
    from .dist.matrix import DistMatrix
    from .obs import IterationLog
    from .obs.timeline import TimelineSink

    from .runtime.executor import Runtime
    from .runtime.parallel import default_workers

    backend = args.backend
    parallel = backend in ("threads", "processes")
    workers = args.workers or (default_workers() if parallel else 1)

    fault_plan = None
    if args.fault_plan:
        from .resilience import FaultPlan

        fault_plan = FaultPlan.from_json(args.fault_plan)
    recovery = _live_recovery_from_args(args, fault_plan)
    if (fault_plan is not None or recovery is not None) and not parallel:
        raise SystemExit("--fault-plan/--retries/--task-timeout require "
                         "--backend threads or processes (live fault "
                         "tolerance runs inside the worker pool)")
    if fault_plan is not None and fault_plan.crashes \
            and backend != "processes":
        raise SystemExit("rank crashes in a live plan require --backend "
                         "processes (threads cannot lose a worker)")
    checkpoint = None
    if args.checkpoint_dir:
        from .resilience import CheckpointPolicy, QdwhCheckpointer

        checkpoint = QdwhCheckpointer(
            args.checkpoint_dir,
            CheckpointPolicy(every=args.checkpoint_every))

    def run_once(nworkers: int, sink=None, live=False):
        rt = Runtime(ProcessGrid(1, 1), numeric=True,
                     deferred=parallel, workers=nworkers, sink=sink,
                     faults=fault_plan if live else None,
                     recovery=recovery if live else None)
        d = DistMatrix.from_array(rt, a, args.nb, name="A")
        log = IterationLog() if args.iter_log else None
        kw = {}
        if args.max_iter is not None:
            kw["max_iter"] = args.max_iter
        t0 = time.perf_counter()
        res = tiled_qdwh(rt, d, backend=backend, workers=nworkers,
                         iter_log=log,
                         checkpoint=checkpoint if live else None, **kw)
        wall = time.perf_counter() - t0
        stats = rt.exec_stats
        ex = rt._executor
        leaked = ex.inflight_attempts if ex is not None else 0
        shm_prefix = (ex.store.prefix
                      if ex is not None and hasattr(ex, "store") else None)
        graph = rt.graph
        rt.close()
        leaked_shm = 0
        if shm_prefix is not None:
            from .runtime.distributed import scan_segments

            leaked_shm = len(scan_segments(shm_prefix))
        return res, wall, log, stats, leaked, leaked_shm, graph

    sink = TimelineSink() if parallel else None
    res, wall, log, stats, leaked, leaked_shm, rt_graph = \
        run_once(workers, sink, live=True)
    u = res.u.to_array()
    h = res.h.to_array()
    rep = polar_report(a, u, h)

    print(f"backend={backend} workers={workers if parallel else 1} "
          f"nb={args.nb} n={a.shape[1]} "
          f"iterations={res.iterations} "
          f"({res.it_qr} QR + {res.it_chol} Cholesky)"
          + (" [degraded to dense]" if res.degraded else ""))
    print(f"orthogonality={rep.orthogonality:.3e} "
          f"backward={rep.backward:.3e}")
    print(f"wall={wall:.3f} s")
    for msg in res.health_log:
        print(f"health: {msg}")
    if stats is not None:
        from .perf.report import recovery_report

        line = (f"executor: {stats.tasks_run} tasks | "
                f"busy {stats.busy_seconds:.3f} s | "
                f"cpu {stats.cpu_seconds:.3f} s | "
                f"utilization {stats.utilization:.2f}")
        if stats.peak_rss_bytes:
            line += f" | peak rss {stats.peak_rss_bytes / 2**20:.0f} MiB"
        line += f" | in-flight after close {leaked}"
        print(line)
        if stats.comm_messages:
            line = (f"comm: {stats.comm_messages} messages | "
                    f"{stats.comm_bytes / 2**20:.1f} MiB on the wire | "
                    f"leaked shm segments {leaked_shm}")
            if stats.comm_retrans_messages:
                line += (f" | {stats.comm_retrans_messages} frame(s) "
                         f"retransmitted")
            print(line)
        print(recovery_report(stats.recovery), end="")
        if leaked:
            print(f"WARNING: {leaked} attempt(s) still in flight "
                  f"after close")
        if leaked_shm:
            print(f"WARNING: {leaked_shm} shared-memory segment(s) "
                  f"leaked after close")
    if log is not None:
        print(log.table(), end="")

    if getattr(args, "critical_path", False):
        if not (parallel and sink is not None and len(sink)):
            raise SystemExit("--critical-path requires --backend threads "
                             "or processes (it analyzes the measured "
                             "task timeline)")
        from .obs.critical_path import critical_path, occupancy

        cp = critical_path(rt_graph, sink.tasks)
        print(cp.format(), end="")
        for lane in occupancy(sink.tasks):
            print(f"  lane {lane.slot}: {lane.tasks} tasks | "
                  f"busy {lane.busy_seconds:.3f} s | "
                  f"idle {lane.idle_seconds:.3f} s | "
                  f"utilization {lane.utilization:.2f}")

    if parallel and workers > 1 and not args.no_baseline:
        from .perf.report import parallel_efficiency

        _, wall1, _, _, _, _, _ = run_once(1)
        eff = parallel_efficiency({1: wall1, workers: wall})
        print(f"baseline workers=1: {wall1:.3f} s | speedup "
              f"{wall1 / wall if wall else float('inf'):.2f}x | "
              f"parallel efficiency {eff[workers]:.2f}")

    trace_path = args.chrome_trace
    if parallel and trace_path is None:
        trace_path = "polar_measured_trace.json"
    if trace_path and sink is not None and len(sink):
        from .obs.export import write_chrome_trace

        write_chrome_trace(sink, trace_path)
        print(f"measured chrome trace written to {trace_path}")

    if args.metrics_json:
        from .obs import get_registry

        reg = get_registry()
        reg.counter(f"polar.runs.tiled_{backend}").inc()
        reg.counter("polar.iterations").inc(res.iterations)
        reg.gauge("polar.orthogonality").set(rep.orthogonality)
        reg.gauge("polar.backward_error").set(rep.backward)
        if parallel:
            reg.gauge("polar.wall_seconds").set(wall)
        _dump_metrics(args.metrics_json)
    if args.output:
        np.savez(args.output, u=u, h=h)
        print(f"factors saved to {args.output}")
    return 0


def cmd_polar(args: argparse.Namespace) -> int:
    from . import polar, polar_report
    from .obs import IterationLog

    a = _polar_input(args)
    if args.backend != "dense":
        if args.method != "qdwh":
            raise SystemExit(f"--backend {args.backend} supports "
                             "--method qdwh only")
        return _polar_tiled(args, a)
    if args.workers is not None:
        raise SystemExit("--workers is only meaningful with "
                         "--backend threads or processes")
    if args.fault_plan or args.retries is not None \
            or args.task_timeout is not None:
        raise SystemExit("--fault-plan/--retries/--task-timeout require "
                         "--backend threads or processes")
    if args.iter_log and args.method != "qdwh":
        raise SystemExit("--iter-log requires --method qdwh")
    log = IterationLog() if args.iter_log else None
    kwargs = {}
    if args.checkpoint_dir:
        if args.method != "qdwh":
            raise SystemExit("--checkpoint-dir requires --method qdwh")
        from .resilience import CheckpointPolicy, QdwhCheckpointer

        kwargs["checkpoint"] = QdwhCheckpointer(
            args.checkpoint_dir,
            CheckpointPolicy(every=args.checkpoint_every))
    if args.max_iter is not None:
        kwargs["max_iter"] = args.max_iter
    res = polar(a, method=args.method, iter_log=log, **kwargs)
    rep = polar_report(a, res.u, res.h)
    if args.metrics_json:
        from .obs import get_registry

        reg = get_registry()
        reg.counter(f"polar.runs.{args.method}").inc()
        reg.counter("polar.iterations").inc(res.iterations)
        reg.gauge("polar.orthogonality").set(rep.orthogonality)
        reg.gauge("polar.backward_error").set(rep.backward)
    print(f"method={args.method} iterations={res.iterations}")
    print(f"orthogonality={rep.orthogonality:.3e} "
          f"backward={rep.backward:.3e}")
    if log is not None:
        print(log.table(), end="")
    if args.output:
        np.savez(args.output, u=res.u, h=res.h)
        print(f"factors saved to {args.output}")
    if args.metrics_json:
        _dump_metrics(args.metrics_json)
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from .perf import simulate_qdwh
    from .runtime.trace import kernel_breakdown

    machine = _machine(args.machine)
    p = simulate_qdwh(machine, args.nodes, args.n, args.impl,
                      cond=args.cond, nb=args.nb,
                      max_tiles=args.max_tiles)
    ranks = p.schedule.config.total_ranks
    plan = _fault_plan_from_args(args, ranks, p.makespan)
    if plan is not None:
        p = simulate_qdwh(machine, args.nodes, args.n, args.impl,
                          cond=args.cond, nb=args.nb,
                          max_tiles=args.max_tiles, faults=plan)
    print(f"{args.machine} x{args.nodes} nodes, n={args.n}, "
          f"{args.impl} (nb={p.nb}, sim nb={p.nb_sim})")
    print(f"  iterations: {p.it_qr} QR + {p.it_chol} Cholesky")
    print(f"  makespan:   {p.makespan:.2f} s ({p.task_count} tasks)")
    print(f"  Tflop/s:    {p.tflops:.2f} (paper flop model) / "
          f"{p.executed_tflops:.2f} (executed)")
    _print_recovery(p.schedule)
    for kind, _busy, share in kernel_breakdown(p.schedule)[:5]:
        print(f"    {kind:>8}: {share * 100:5.1f}% of busy time")
    if args.trace:
        from .runtime.trace import export_chrome_trace

        q = simulate_qdwh(machine, args.nodes, args.n, args.impl,
                          cond=args.cond, nb=args.nb,
                          max_tiles=args.max_tiles, keep_trace=True)
        path = export_chrome_trace(q.schedule, args.trace)
        print(f"  chrome trace written to {path} "
              "(open in chrome://tracing or Perfetto)")
    if args.metrics_json:
        _dump_metrics(args.metrics_json)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one simulated point with full timeline capture and export it."""
    from .obs import (
        TimelineSink,
        ascii_gantt,
        kernel_breakdown,
        write_chrome_trace,
    )
    from .perf import simulate_qdwh

    machine = _machine(args.machine)
    sink = TimelineSink()
    p = simulate_qdwh(machine, args.nodes, args.n, args.impl,
                      cond=args.cond, nb=args.nb,
                      max_tiles=args.max_tiles, lookahead=args.lookahead,
                      sink=sink)
    s = p.schedule
    print(f"{args.machine} x{args.nodes} nodes, n={args.n}, "
          f"{args.impl} (nb={p.nb}, sim nb={p.nb_sim})")
    print(f"  makespan:  {p.makespan:.3f} s | {p.task_count} tasks | "
          f"{len(sink.transfers)} transfers | {p.tflops:.2f} Tflop/s")
    stalls = s.stall_seconds or {}
    print("  stalls:    " + "  ".join(
        f"{cause}={sec:.3g}s" for cause, sec in sorted(stalls.items())))
    for kind, _busy, share in kernel_breakdown(sink)[:5]:
        print(f"    {kind:>8}: {share * 100:5.1f}% of busy time")
    if args.chrome_trace:
        path = write_chrome_trace(sink, args.chrome_trace)
        print(f"  chrome trace written to {path} "
              "(open in Perfetto or chrome://tracing)")
    if args.gantt or not args.chrome_trace:
        print(ascii_gantt(sink, width=args.gantt_width), end="")
    if args.metrics_json:
        _dump_metrics(args.metrics_json)
    return 0


def _faults_live(args: argparse.Namespace) -> int:
    """``repro faults --live``: seeded live-fault smoke on real workers.

    Runs a fault-injected tiled QDWH on the threads or processes
    backend next to a fault-free baseline and gates the exit code on
    the same invariants CI uses: the faulty run converges, its backward
    error stays within the condition-scaled tolerance, the executor
    leaks no in-flight attempts after close, and (processes) no
    shared-memory segments survive teardown.  On the processes backend
    rank crashes are real: the target worker is SIGKILLed and its
    in-flight work replayed onto the survivors.
    """
    import math

    from . import polar_report
    from .core.tiled_qdwh import tiled_qdwh
    from .dist import DistMatrix, ProcessGrid
    from .matrices import generate_matrix
    from .obs import TimelineSink
    from .perf.report import recovery_report
    from .resilience import plan_from_spec
    from .resilience.live import RecoveryPolicy
    from .runtime import Runtime

    backend = args.backend
    processes = backend == "processes"
    chaos = bool(getattr(args, "chaos", False))
    if chaos and not processes:
        raise SystemExit("--chaos injects network faults into the "
                         "driver<->worker comm layer; it needs "
                         "--backend processes")
    plan = _fault_plan_from_args(args, max(1, args.workers), 0.0)
    if plan is None:
        if processes:
            # Default smoke plan: one real worker SIGKILL mid-run plus
            # a light transient/stall background.
            plan = plan_from_spec(seed=args.fault_seed,
                                  crash=("1@0.05",), transient_p=0.05,
                                  max_attempts=4, stall_p=0.02,
                                  stall_seconds=0.02)
        else:
            # Default smoke plan: transients + stalls + one corruption.
            plan = plan_from_spec(seed=args.fault_seed, transient_p=0.1,
                                  max_attempts=4, stall_p=0.05,
                                  stall_seconds=0.05, corrupt_p=0.02)
    if plan.crashes and not processes:
        raise SystemExit("rank crashes need --backend processes, where "
                         "a crash SIGKILLs a real worker; threads "
                         "cannot lose a worker (drop --crash/--mttf)")
    if chaos:
        import dataclasses

        from .resilience.net import default_chaos_plan

        plan = dataclasses.replace(
            plan, net=default_chaos_plan(seed=args.fault_seed))
    pol = RecoveryPolicy(
        max_retries=args.retries if args.retries is not None else 3,
        task_timeout=args.task_timeout,
        scrub_writes=bool(plan.corruptions))
    a = generate_matrix(args.live_n, cond=args.cond, seed=args.fault_seed)

    sink = TimelineSink()
    rt = Runtime(ProcessGrid(1, 1), faults=plan, recovery=pol, sink=sink)
    d = DistMatrix.from_array(rt, a, args.live_nb, name="A")
    res = tiled_qdwh(rt, d, backend=backend, workers=args.workers)
    rep = polar_report(a, d.to_array(), res.h.to_array())
    stats = rt.exec_stats
    ex = rt._executor
    leaked = ex.inflight_attempts if ex is not None else 0
    shm_prefix = (ex.store.prefix
                  if ex is not None and hasattr(ex, "store") else None)
    rt.close()
    leaked_shm = 0
    if shm_prefix is not None:
        from .runtime.distributed import scan_segments

        leaked_shm = len(scan_segments(shm_prefix))

    rt0 = Runtime(ProcessGrid(1, 1))
    d0 = DistMatrix.from_array(rt0, a, args.live_nb, name="A")
    res0 = tiled_qdwh(rt0, d0)
    rep0 = polar_report(a, d0.to_array(), res0.h.to_array())
    rt0.close()

    eps = float(np.finfo(a.dtype).eps)
    tol = max(1e3 * eps, 100.0 * eps * math.sqrt(args.cond),
              10.0 * rep0.backward)
    ok = (res.converged and leaked == 0 and leaked_shm == 0
          and rep.backward <= tol)
    print(f"live fault smoke: backend={backend} n={args.live_n} "
          f"nb={args.live_nb} cond={args.cond:g} "
          f"workers={args.workers} seed={args.fault_seed}"
          + (" chaos=on" if chaos else ""))
    print(f"  faulty:     converged={res.converged} "
          f"iterations={res.iterations} backward={rep.backward:.3e}"
          + (" [degraded to dense]" if res.degraded else ""))
    print(f"  fault-free: converged={res0.converged} "
          f"iterations={res0.iterations} backward={rep0.backward:.3e}")
    print(f"  gate: backward <= {tol:.3e}, leaked attempts = {leaked}"
          + (f", leaked shm segments = {leaked_shm}" if processes
             else ""))
    for msg in res.health_log:
        print(f"  health: {msg}")
    if stats is not None:
        print(recovery_report(stats.recovery), end="")
        if stats.comm_retrans_messages:
            print(f"  wire: {stats.comm_retrans_messages} retransmitted "
                  f"frame(s), {stats.comm_retrans_bytes / 2**10:.1f} KiB "
                  f"(app-level bytes counted once)")
    counts = sink.fault_counts()
    if counts:
        print("  events:    " + "  ".join(
            f"{k}={v}" for k, v in sorted(counts.items())))
    if args.metrics_json:
        _dump_metrics(args.metrics_json)
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


def cmd_faults(args: argparse.Namespace) -> int:
    """Fault-injected run vs. fault-free baseline + checkpoint trade-off."""
    from .obs import TimelineSink
    from .perf import simulate_qdwh
    from .resilience import checkpoint_write_cost, recovery_overhead_curve

    if args.live:
        return _faults_live(args)
    machine = _machine(args.machine)
    base = simulate_qdwh(machine, args.nodes, args.n, args.impl,
                         cond=args.cond, nb=args.nb,
                         max_tiles=args.max_tiles)
    ranks = base.schedule.config.total_ranks
    print(f"{args.machine} x{args.nodes} nodes ({ranks} ranks), "
          f"n={args.n}, {args.impl}")
    print(f"  fault-free makespan: {base.makespan:.3f} s")

    plan = _fault_plan_from_args(args, ranks, base.makespan)
    if args.emit_plan:
        if plan is None:
            raise SystemExit("no faults specified; nothing to emit "
                             "(use --crash/--transient-p/--straggler/"
                             "--link-factor/--mttf)")
        plan.to_json(args.emit_plan)
        print(f"  fault plan written to {args.emit_plan}")
    if plan is not None:
        sink = TimelineSink()
        faulty = simulate_qdwh(machine, args.nodes, args.n, args.impl,
                               cond=args.cond, nb=args.nb,
                               max_tiles=args.max_tiles, faults=plan,
                               sink=sink)
        slowdown = (faulty.makespan / base.makespan
                    if base.makespan else 1.0)
        print(f"  faulty makespan:     {faulty.makespan:.3f} s "
              f"({slowdown:.2f}x fault-free)")
        _print_recovery(faulty.schedule)
        counts = sink.fault_counts()
        if counts:
            print("  events:    " + "  ".join(
                f"{k}={v}" for k, v in sorted(counts.items())))

    # Young/Daly checkpoint trade-off for this run.
    write_cost = checkpoint_write_cost(args.n, args.n)
    mttfs = args.mttfs or [base.makespan * f for f in (0.5, 1, 2, 5, 10)]
    print(f"  checkpoint trade-off (one write ~ {write_cost:.2f} s):")
    print(f"    {'MTTF s':>10} {'interval s':>11} {'#ckpts':>7} "
          f"{'overhead':>9} {'expected s':>11}")
    for row in recovery_overhead_curve(base.makespan, write_cost, mttfs):
        print(f"    {row['mttf']:>10.1f} {row['interval']:>11.2f} "
              f"{row['checkpoints']:>7d} {row['overhead']:>8.1%} "
              f"{row['expected_makespan']:>11.2f}")
    if args.metrics_json:
        _dump_metrics(args.metrics_json)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from .bench.tables import format_series
    from .perf import figure_series

    machine = _machine(args.machine)
    sizes = args.sizes or None
    out = figure_series(machine, args.nodes, args.impls, sizes,
                        max_tiles=args.max_tiles)
    xs = [p.n for p in next(iter(out.values()))]
    series = {impl: [round(p.tflops, 3) for p in pts]
              for impl, pts in out.items()}
    print(format_series(
        f"{args.machine}, {args.nodes} node(s): Tflop/s vs matrix size",
        "n", xs, series))
    return 0


def cmd_memory(args: argparse.Namespace) -> int:
    from .perf.memory import max_feasible_n, qdwh_footprint, round_down_to

    machine = _machine(args.machine)
    rpn = args.ranks_per_node
    if rpn is None:
        rpn = 2 if args.machine == "summit" else 8
    nmax = round_down_to(max_feasible_n(machine, args.nodes,
                                        ranks_per_node=rpn,
                                        use_gpu=not args.cpu))
    fp = qdwh_footprint(machine, args.nodes, nmax, ranks_per_node=rpn,
                        use_gpu=not args.cpu)
    print(f"{args.machine} x{args.nodes} nodes "
          f"({rpn} ranks/node, {'CPU' if args.cpu else 'GPU'}):")
    print(f"  largest feasible n: {nmax}")
    print(f"  per-rank workspace: {fp.per_rank_bytes / 2**30:.1f} GiB "
          f"of {fp.capacity_bytes / 2**30:.0f} GiB")
    print(f"  workspace overhead: {fp.overhead_factor:.1f}x the input")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench``: the perf-trajectory harness.

    Without ``--compare``, runs the fixed measurement suite (default or
    ``--smoke``) and writes schema-versioned ``BENCH_qdwh.json`` +
    ``BENCH_scaling.json`` to ``--out-dir``.  With ``--compare OLD
    NEW``, classifies every overlapping cell as improvement / noise /
    regression using repeat-run variance and exits non-zero on any
    regression (the CI gate).
    """
    from .obs.bench import (
        compare_bench,
        default_suite,
        load_bench,
        run_suite,
        smoke_suite,
        write_bench,
    )

    if args.compare:
        old_path, new_path = args.compare
        rep = compare_bench(load_bench(old_path), load_bench(new_path),
                            threshold=args.threshold)
        print(rep.format(), end="")
        return 0 if rep.ok else 1

    suite = (smoke_suite(repeats=args.repeats, seed=args.seed)
             if args.smoke
             else default_suite(repeats=args.repeats, seed=args.seed))
    print(f"bench: {suite.name} suite, {len(suite.cells)} cell(s), "
          f"{suite.warmup} warmup + {suite.repeats} timed repeat(s) each")
    run = run_suite(suite, progress=print)
    for path in write_bench(run, out_dir=args.out_dir):
        print(f"wrote {path}")

    key = run.flagship_key()
    if key is not None:
        cp = run.qdwh["cells"][key].get("critical_path")
        if cp:
            print(f"critical path [{key}]: {cp['chain_tasks']} tasks | "
                  f"{cp['task_s']:.4f} s on task + {cp['wait_s']:.4f} s "
                  f"waiting vs {cp['makespan_s']:.4f} s makespan "
                  f"({cp['reconciliation'] * 100:.2f}% off)")
        if args.chrome_trace:
            from .obs.export import write_chrome_trace

            write_chrome_trace(run.sinks[key], args.chrome_trace)
            print(f"measured chrome trace [{key}] written to "
                  f"{args.chrome_trace}")
    if args.metrics_json:
        _dump_metrics(args.metrics_json)
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .validation import validate_all

    rep = validate_all(n_numeric=args.n, max_tiles=args.max_tiles)
    print(rep.summary())
    return 0 if rep.passed else 1


def _lint_static(args: argparse.Namespace) -> int:
    import repro
    from .analysis import lint_paths

    paths = args.paths or [os.path.dirname(repro.__file__)]
    findings = lint_paths(paths)
    for f in findings:
        print(f.format())
    print(f"repro-lint: {len(findings)} finding(s) over {len(paths)} "
          f"path(s)")
    return 1 if findings else 0


def _lint_sanitize(args: argparse.Namespace) -> int:
    import warnings

    import numpy as np

    from .analysis.sanitizer import SanitizerWarning
    from .core.tiled_qdwh import tiled_qdwh
    from .dist import DistMatrix, ProcessGrid
    from .matrices import generate_matrix
    from .runtime import Runtime

    a = generate_matrix(args.n, cond=args.cond, dtype=np.float64,
                        seed=args.seed)
    dirty = 0
    for backend in ("eager", "threads"):
        rt = Runtime(ProcessGrid(2, 2), sanitize="warn")
        da = DistMatrix.from_array(rt, a.copy(), args.nb)
        with warnings.catch_warnings():
            # Findings are collected on the sanitizer; the per-finding
            # warnings would only duplicate the report below.
            warnings.simplefilter("ignore", SanitizerWarning)
            tiled_qdwh(rt, da, backend=backend,
                       workers=args.workers if backend == "threads"
                       else None)
            rt.sync()
        san = rt.sanitizer
        races = rt.graph.check_races(footprints=san.footprints(),
                                     raise_on_error=False)
        for f in san.findings:
            print(f"  {backend}: {f.message()}")
        for r in races:
            print(f"  {backend}: {r.message()}")
        summary = san.summary()
        print(f"tilesan[{backend}]: {summary.pop('tasks_checked')} task(s) "
              f"checked, {len(san.findings)} finding(s), "
              f"{len(races)} race(s)")
        dirty += len(san.findings) + len(races)
        rt.close()
    return 1 if dirty else 0


def _distsan_trace(findings, path: str) -> None:
    """Write DistSan findings to a chrome trace as instant events."""
    from .obs.export import write_chrome_trace
    from .obs.timeline import AnalysisEvent, TimelineSink

    sink = TimelineSink()
    for checker, f in findings:
        sink.on_analysis(AnalysisEvent(
            checker=checker,
            kind=getattr(f, "invariant", None) or getattr(f, "rule", None)
            or getattr(f, "kind", "finding"),
            tid=getattr(f, "first", -1) if hasattr(f, "first")
            else getattr(f, "tid", -1),
            detail=f.message() if hasattr(f, "message") else str(f)))
    write_chrome_trace(sink, path)
    print(f"distsan trace written to {path}")


def _lint_dist(args: argparse.Namespace) -> int:
    """Record a processes-backend QDWH run, then check it with the
    DistSan happens-before, refcount and protocol checkers."""
    import numpy as np

    from .analysis.dist import audit_refcounts, check_frames, check_hb
    from .core.tiled_qdwh import tiled_qdwh
    from .dist import DistMatrix, ProcessGrid
    from .matrices import generate_matrix
    from .runtime import Runtime
    from .runtime.distributed.events import DistTraceRecorder

    a = generate_matrix(args.n, cond=args.cond, dtype=np.float64,
                        seed=args.seed)
    if getattr(args, "chaos", False):
        from .resilience import FaultPlan
        from .resilience.live import RecoveryPolicy
        from .resilience.net import default_chaos_plan

        rt = Runtime(ProcessGrid(2, 2),
                     faults=FaultPlan(seed=args.seed,
                                      net=default_chaos_plan(args.seed)),
                     recovery=RecoveryPolicy())
    else:
        rt = Runtime(ProcessGrid(2, 2))
    recorder = DistTraceRecorder()
    rt.dist_recorder = recorder
    da = DistMatrix.from_array(rt, a.copy(), args.nb)
    tiled_qdwh(rt, da, backend="processes", workers=args.workers)
    rt.sync()
    tasks = list(rt.graph.tasks)
    rt.close()

    hb = check_hb(recorder, tasks)
    refs = audit_refcounts(recorder)
    proto = check_frames(recorder)
    for f in hb:
        print(f"  hb: {f.message()}")
    for f in refs:
        print(f"  refcount: {f.message()}")
    for f in proto:
        print(f"  protocol: {f.message()}")
    s = recorder.summary()
    print(f"distsan[processes]: {s.get('dispatch', 0)} dispatch(es), "
          f"{s.get('driver', 0)} driver task(s), {s.get('pin', 0)} shm "
          f"segment(s), {s.get('frames', 0)} frame(s) | "
          f"{len(hb)} hb + {len(refs)} refcount + {len(proto)} protocol "
          f"finding(s)")
    if getattr(args, "chrome_trace", None):
        _distsan_trace([("hb", f) for f in hb]
                       + [("refcount", f) for f in refs]
                       + [("protocol", f) for f in proto],
                       args.chrome_trace)
    return 1 if hb or refs or proto else 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Static AST rules, a QDWH run under the TileSan sanitizer,
    and/or a recorded processes run under the DistSan checkers."""
    any_selected = args.static or args.sanitize or args.dist
    rc = 0
    if args.static or not any_selected:
        rc |= _lint_static(args)
    if args.sanitize or not any_selected:
        rc |= _lint_sanitize(args)
    if args.dist:
        rc |= _lint_dist(args)
    return rc


def cmd_explore(args: argparse.Namespace) -> int:
    """Model-check the distributed scheduler's schedule space."""
    from .analysis.dist import builtin_scenarios, explore, mutant_gate

    scenarios = builtin_scenarios()
    if args.scenario:
        scenarios = [s for s in scenarios if s.name == args.scenario]
        if not scenarios:
            names = ", ".join(s.name for s in builtin_scenarios())
            print(f"unknown scenario {args.scenario!r} (have: {names})")
            return 2
    findings = []
    for sc in scenarios:
        rep = explore(sc, preemption_bound=args.bound,
                      max_schedules=args.max_schedules)
        cover = "truncated" if rep.truncated else "exhaustive"
        print(f"explore[{sc.name}]: {rep.schedules} schedule(s), "
              f"{rep.steps} step(s), bound {rep.preemption_bound} "
              f"({cover}) | {len(rep.findings)} finding(s)")
        for f in rep.findings:
            print(f"  {f}")
        findings.extend(rep.findings)
    rc = 1 if findings else 0
    if args.mutants:
        gate = mutant_gate(preemption_bound=args.bound,
                           max_schedules=args.max_schedules)
        for r in gate.results:
            verdict = (f"killed by {r.killing_invariant!r} "
                       f"on {r.scenario}" if r.killed else "SURVIVED")
            print(f"mutant[{r.name}]: {verdict} "
                  f"({r.schedules} schedule(s))")
        print(f"mutant gate: {len(gate.results)} mutant(s), "
              f"{len(gate.survivors)} survivor(s), "
              f"{len(gate.clean_findings)} clean finding(s)")
        if not gate.ok:
            rc = 1
    if args.chrome_trace:
        _distsan_trace([("explore", f) for f in findings],
                       args.chrome_trace)
    return rc


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="Task-based QDWH polar decomposition "
                    "(SC-W 2023 reproduction)")
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("polar", help="decompose a .npy matrix")
    p.add_argument("matrix", nargs="?",
                   help="path to a .npy file (m x n, m >= n); "
                        "alternatively use --generate N")
    p.add_argument("--method", default="qdwh",
                   choices=["qdwh", "svd", "newton", "newton_scaled",
                            "dwh", "zolo"])
    p.add_argument("--backend", default="dense",
                   choices=["dense", "eager", "threads", "processes"],
                   help="dense: the reference dense driver (default); "
                        "eager: tiled QDWH with eager task execution; "
                        "threads: tiled QDWH replayed on a thread pool "
                        "with measured timestamps; processes: replayed "
                        "on forked worker processes with shared-memory "
                        "tiles")
    p.add_argument("--workers", type=int, default=None,
                   help="worker count for --backend threads/processes "
                        "(default: one per core)")
    p.add_argument("--nb", type=int, default=128,
                   help="tile size for the tiled backends (default 128)")
    p.add_argument("--generate", type=int, default=None, metavar="N",
                   help="generate an N x N test matrix instead of "
                        "loading one from disk")
    p.add_argument("--cond", type=float, default=1e16,
                   help="condition number for --generate (default 1e16)")
    p.add_argument("--dtype", default="float64",
                   choices=["float32", "float64", "complex64",
                            "complex128"],
                   help="dtype for --generate (default float64)")
    p.add_argument("--seed", type=int, default=0,
                   help="RNG seed for --generate (default 0)")
    p.add_argument("--chrome-trace", default=None, metavar="PATH",
                   help="write the measured chrome://tracing JSON here "
                        "(threads/processes backends; default "
                        "polar_measured_trace.json)")
    p.add_argument("--no-baseline", action="store_true",
                   help="skip the workers=1 baseline run (the parallel "
                        "backends normally report speedup and parallel "
                        "efficiency against it)")
    p.add_argument("--critical-path", action="store_true",
                   help="threads/processes backends: print the executed "
                        "critical chain (per-kind contribution, wait "
                        "causes) and per-worker-lane occupancy")
    p.add_argument("--output", help="save factors to this .npz path")
    p.add_argument("--iter-log", action="store_true",
                   help="print the per-iteration QDWH telemetry table")
    p.add_argument("--checkpoint-dir",
                   help="write/resume QDWH iteration checkpoints in this "
                        "directory (qdwh only; dense and tiled backends); "
                        "an interrupted run restarted with the same "
                        "directory resumes mid-iteration and returns "
                        "identical factors")
    p.add_argument("--fault-plan", default=None, metavar="PLAN.json",
                   help="threads/processes backends: inject this "
                        "FaultPlan's live faults (transients, worker "
                        "stalls, tile corruption; rank crashes on the "
                        "processes backend) into the worker pool "
                        "(see repro faults --emit-plan)")
    p.add_argument("--retries", type=int, default=None, metavar="N",
                   help="threads/processes backends: per-task retry "
                        "budget for transient failures (default 2 when "
                        "recovery is active)")
    p.add_argument("--task-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="threads/processes backends: wall-clock seconds "
                        "before a running attempt is flagged timed out "
                        "and a backup may be launched (processes: the "
                        "worker is killed and its tasks replayed)")
    p.add_argument("--checkpoint-every", type=int, default=1,
                   help="checkpoint every k-th iteration (default 1)")
    p.add_argument("--max-iter", type=int, default=None,
                   help="stop after this many iterations (testing aid; "
                        "combine with --checkpoint-dir to interrupt "
                        "and later resume a run)")
    p.add_argument("--metrics-json",
                   help="dump the metrics registry snapshot to this path")
    p.set_defaults(fn=cmd_polar)

    p = sub.add_parser("simulate", help="one simulated performance point")
    p.add_argument("--machine", default="summit")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--n", type=int, default=40_000)
    p.add_argument("--impl", default="slate_gpu",
                   choices=["slate_gpu", "slate_cpu", "scalapack"])
    p.add_argument("--cond", type=float, default=1e16)
    p.add_argument("--nb", type=int, default=None)
    p.add_argument("--max-tiles", type=int, default=16)
    p.add_argument("--trace", help="write a chrome://tracing JSON here")
    p.add_argument("--fault-plan",
                   help="inject faults from this JSON plan "
                        "(see repro faults --emit-plan)")
    p.add_argument("--mttf", type=float, default=None,
                   help="draw Poisson rank crashes for this system MTTF "
                        "(seconds) over the fault-free makespan")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--metrics-json",
                   help="dump the metrics registry snapshot to this path")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser(
        "trace", help="simulate a point with full timeline capture")
    p.add_argument("--machine", default="summit")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--n", type=int, default=40_000)
    p.add_argument("--impl", default="slate_gpu",
                   choices=["slate_gpu", "slate_cpu", "scalapack"])
    p.add_argument("--cond", type=float, default=1e16)
    p.add_argument("--nb", type=int, default=None)
    p.add_argument("--max-tiles", type=int, default=16)
    p.add_argument("--lookahead", type=int, default=None,
                   help="lookahead window (task-based impls)")
    p.add_argument("--chrome-trace",
                   help="write a Perfetto-loadable trace_event JSON here")
    p.add_argument("--gantt", action="store_true",
                   help="print the terminal Gantt (default when no "
                        "--chrome-trace is given)")
    p.add_argument("--gantt-width", type=int, default=72)
    p.add_argument("--metrics-json",
                   help="dump the metrics registry snapshot to this path")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "faults",
        help="fault-injected run vs. baseline + checkpoint trade-off")
    p.add_argument("--machine", default="summit")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--n", type=int, default=20_000)
    p.add_argument("--impl", default="slate_gpu",
                   choices=["slate_gpu", "slate_cpu", "scalapack"])
    p.add_argument("--cond", type=float, default=1e16)
    p.add_argument("--nb", type=int, default=None)
    p.add_argument("--max-tiles", type=int, default=16)
    p.add_argument("--fault-plan", help="load the fault plan from this "
                                        "JSON file (overrides the spec "
                                        "flags below)")
    p.add_argument("--crash", action="append", metavar="RANK@TIME",
                   help="kill RANK at TIME seconds (repeatable)")
    p.add_argument("--transient-p", type=float, default=0.0,
                   help="per-attempt kernel failure probability")
    p.add_argument("--max-attempts", type=int, default=4)
    p.add_argument("--straggler", action="append", metavar="RANK@FACTOR",
                   help="slow RANK down by FACTOR for the whole run "
                        "(repeatable)")
    p.add_argument("--link-factor", type=float, default=1.0,
                   help="degrade every link's bandwidth by this factor")
    p.add_argument("--no-speculation", action="store_true",
                   help="disable speculative straggler duplication")
    p.add_argument("--stall-p", type=float, default=0.0,
                   help="live worker-stall probability per task "
                        "(--live and threads-backend plans)")
    p.add_argument("--stall-seconds", type=float, default=0.25,
                   help="injected stall duration (default 0.25 s)")
    p.add_argument("--corrupt-p", type=float, default=0.0,
                   help="live tile-corruption probability per task "
                        "(one NaN event budget)")
    p.add_argument("--live", action="store_true",
                   help="run the fault plan inside a real parallel QDWH "
                        "(n=--live-n) instead of the simulator, and "
                        "gate the exit code on convergence, backward "
                        "error, zero leaked attempts, and (processes) "
                        "zero leaked shared-memory segments")
    p.add_argument("--backend", default="threads",
                   choices=["threads", "processes"],
                   help="worker pool for --live (default threads; "
                        "processes SIGKILLs real workers for rank "
                        "crashes)")
    p.add_argument("--chaos", action="store_true",
                   help="with --live --backend processes: run under "
                        "the seeded ChaosComm network fault plan "
                        "(frame drops, duplicates, delays, one corrupt "
                        "frame, one partition window, one connection "
                        "cut) on top of the process fault plan")
    p.add_argument("--live-n", type=int, default=256,
                   help="matrix size for --live (default 256)")
    p.add_argument("--live-nb", type=int, default=64,
                   help="tile size for --live (default 64)")
    p.add_argument("--workers", type=int, default=4,
                   help="worker count for --live (default 4)")
    p.add_argument("--retries", type=int, default=None,
                   help="per-task retry budget for --live (default 3)")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="wall-clock task timeout for --live")
    p.add_argument("--mttf", type=float, default=None,
                   help="draw Poisson rank crashes for this system MTTF "
                        "(seconds) instead of explicit --crash specs")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--mttfs", nargs="+", type=float,
                   help="MTTF values for the checkpoint trade-off table")
    p.add_argument("--emit-plan",
                   help="write the constructed fault plan JSON here")
    p.add_argument("--metrics-json",
                   help="dump the metrics registry snapshot to this path")
    p.set_defaults(fn=cmd_faults)

    p = sub.add_parser("sweep", help="Tflop/s vs size sweep")
    p.add_argument("--machine", default="summit")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--impls", nargs="+",
                   default=["slate_gpu", "scalapack"])
    p.add_argument("--sizes", nargs="+", type=int)
    p.add_argument("--max-tiles", type=int, default=12)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("memory", help="feasibility from the footprint model")
    p.add_argument("--machine", default="frontier")
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--ranks-per-node", type=int, default=None)
    p.add_argument("--cpu", action="store_true",
                   help="CPU-only run (host memory capacity)")
    p.set_defaults(fn=cmd_memory)

    p = sub.add_parser(
        "lint",
        help="correctness tooling: static footprint rules + TileSan")
    p.add_argument("--static", action="store_true",
                   help="run only the repro-lint AST rules")
    p.add_argument("--sanitize", action="store_true",
                   help="run only a small QDWH (eager + threads) under "
                        "the TileSan footprint sanitizer and the "
                        "happens-before race checker")
    p.add_argument("--dist", action="store_true",
                   help="record a small processes-backend QDWH and "
                        "check it with the DistSan happens-before, "
                        "shm-refcount and wire-protocol checkers")
    p.add_argument("--chrome-trace", default=None, metavar="PATH",
                   help="with --dist: write findings to a chrome "
                        "trace as instant events")
    p.add_argument("--chaos", action="store_true",
                   help="with --dist: record the run under the seeded "
                        "ChaosComm network fault plan — the protocol "
                        "checkers must stay clean across CRC'd frames, "
                        "retransmissions and resyncs")
    p.add_argument("paths", nargs="*",
                   help="files/directories for --static (default: the "
                        "installed repro package)")
    p.add_argument("--n", type=int, default=64,
                   help="matrix size for --sanitize (default 64)")
    p.add_argument("--nb", type=int, default=16,
                   help="tile size for --sanitize (default 16)")
    p.add_argument("--cond", type=float, default=1e8,
                   help="condition number for --sanitize (default 1e8)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=4,
                   help="threads-backend worker count (default 4)")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "explore",
        help="model-check the distributed scheduler: systematic "
             "bounded interleavings of completion/steal/crash events "
             "with invariant checks, plus the seeded-mutant gate")
    p.add_argument("--scenario", default=None,
                   help="explore one builtin scenario by name "
                        "(default: all)")
    p.add_argument("--bound", type=int, default=2,
                   help="preemption bound: max deviations from the "
                        "default schedule per run (default 2)")
    p.add_argument("--max-schedules", type=int, default=400,
                   help="schedule budget per scenario (default 400)")
    p.add_argument("--mutants", action="store_true",
                   help="also run the seeded-mutant gate: every known-"
                        "bad scheduler/store variant must be killed")
    p.add_argument("--chrome-trace", default=None, metavar="PATH",
                   help="write findings to a chrome trace as instant "
                        "events")
    p.set_defaults(fn=cmd_explore)

    p = sub.add_parser(
        "bench",
        help="measure the fixed perf suite into BENCH_*.json, or "
             "compare two of them with regression gating")
    p.add_argument("--smoke", action="store_true",
                   help="run the small CI suite (a strict subset of the "
                        "default suite, so comparisons overlap)")
    p.add_argument("--repeats", type=int, default=3,
                   help="timed repeats per cell; the median is the "
                        "recorded makespan and the spread feeds the "
                        "compare noise model (default 3)")
    p.add_argument("--seed", type=int, default=0,
                   help="matrix-generator / fault-plan seed (default 0)")
    p.add_argument("--out-dir", default=".",
                   help="directory receiving BENCH_qdwh.json and "
                        "BENCH_scaling.json (default: current dir)")
    p.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                   default=None,
                   help="compare two BENCH_qdwh.json files instead of "
                        "measuring; exits 1 on any regression beyond "
                        "the threshold/noise gate")
    p.add_argument("--threshold", type=float, default=0.25,
                   help="relative median slowdown that fails --compare "
                        "(default 0.25; widened by repeat noise and 2x "
                        "on environment mismatch)")
    p.add_argument("--chrome-trace", default=None, metavar="PATH",
                   help="also export the flagship threads cell's "
                        "measured timeline as a Perfetto trace")
    p.add_argument("--metrics-json",
                   help="dump the metrics registry snapshot to this path")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("validate",
                       help="run the paper-claim acceptance matrix")
    p.add_argument("--n", type=int, default=256,
                   help="size of the measured (numeric) checks")
    p.add_argument("--max-tiles", type=int, default=10,
                   help="granularity of the simulated checks")
    p.set_defaults(fn=cmd_validate)
    return ap


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
