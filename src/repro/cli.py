"""Command-line interface.

Subcommands, mirroring how a downstream user would drive the library:

* ``repro polar FILE.npy``      — decompose a matrix from disk.
* ``repro simulate``            — one performance point on a machine model.
* ``repro trace``               — simulate a point and export its timeline
  (Chrome/Perfetto trace, terminal Gantt, metrics snapshot).
* ``repro sweep``               — a figure-style size sweep.
* ``repro memory``              — feasibility limits from the footprint model.
* ``repro validate``            — run the acceptance matrix (paper claims).

Run ``python -m repro.cli --help`` (or the ``repro`` console script).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _machine(name: str):
    from .machines import aurora, frontier, summit

    try:
        return {"summit": summit, "frontier": frontier,
                "aurora": aurora}[name]()
    except KeyError:
        raise SystemExit(f"unknown machine {name!r}; "
                         f"expected summit, frontier, or aurora") from None


def _dump_metrics(path: str) -> None:
    import json

    from .obs import get_registry

    with open(path, "w") as fh:
        json.dump(get_registry().snapshot(), fh, indent=2)
    print(f"metrics snapshot written to {path}")


def cmd_polar(args: argparse.Namespace) -> int:
    from . import polar, polar_report
    from .obs import IterationLog

    a = np.load(args.matrix)
    if a.ndim != 2:
        raise SystemExit(f"{args.matrix} does not hold a matrix")
    if args.iter_log and args.method != "qdwh":
        raise SystemExit("--iter-log requires --method qdwh")
    log = IterationLog() if args.iter_log else None
    res = polar(a, method=args.method, iter_log=log)
    rep = polar_report(a, res.u, res.h)
    if args.metrics_json:
        from .obs import get_registry

        reg = get_registry()
        reg.counter(f"polar.runs.{args.method}").inc()
        reg.counter("polar.iterations").inc(res.iterations)
        reg.gauge("polar.orthogonality").set(rep.orthogonality)
        reg.gauge("polar.backward_error").set(rep.backward)
    print(f"method={args.method} iterations={res.iterations}")
    print(f"orthogonality={rep.orthogonality:.3e} "
          f"backward={rep.backward:.3e}")
    if log is not None:
        print(log.table(), end="")
    if args.output:
        np.savez(args.output, u=res.u, h=res.h)
        print(f"factors saved to {args.output}")
    if args.metrics_json:
        _dump_metrics(args.metrics_json)
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from .perf import simulate_qdwh
    from .runtime.trace import kernel_breakdown

    machine = _machine(args.machine)
    p = simulate_qdwh(machine, args.nodes, args.n, args.impl,
                      cond=args.cond, nb=args.nb,
                      max_tiles=args.max_tiles)
    print(f"{args.machine} x{args.nodes} nodes, n={args.n}, "
          f"{args.impl} (nb={p.nb}, sim nb={p.nb_sim})")
    print(f"  iterations: {p.it_qr} QR + {p.it_chol} Cholesky")
    print(f"  makespan:   {p.makespan:.2f} s ({p.task_count} tasks)")
    print(f"  Tflop/s:    {p.tflops:.2f} (paper flop model) / "
          f"{p.executed_tflops:.2f} (executed)")
    for kind, _busy, share in kernel_breakdown(p.schedule)[:5]:
        print(f"    {kind:>8}: {share * 100:5.1f}% of busy time")
    if args.trace:
        from .runtime.trace import export_chrome_trace

        q = simulate_qdwh(machine, args.nodes, args.n, args.impl,
                          cond=args.cond, nb=args.nb,
                          max_tiles=args.max_tiles, keep_trace=True)
        path = export_chrome_trace(q.schedule, args.trace)
        print(f"  chrome trace written to {path} "
              "(open in chrome://tracing or Perfetto)")
    if args.metrics_json:
        _dump_metrics(args.metrics_json)
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one simulated point with full timeline capture and export it."""
    from .obs import (
        TimelineSink,
        ascii_gantt,
        kernel_breakdown,
        write_chrome_trace,
    )
    from .perf import simulate_qdwh

    machine = _machine(args.machine)
    sink = TimelineSink()
    p = simulate_qdwh(machine, args.nodes, args.n, args.impl,
                      cond=args.cond, nb=args.nb,
                      max_tiles=args.max_tiles, lookahead=args.lookahead,
                      sink=sink)
    s = p.schedule
    print(f"{args.machine} x{args.nodes} nodes, n={args.n}, "
          f"{args.impl} (nb={p.nb}, sim nb={p.nb_sim})")
    print(f"  makespan:  {p.makespan:.3f} s | {p.task_count} tasks | "
          f"{len(sink.transfers)} transfers | {p.tflops:.2f} Tflop/s")
    stalls = s.stall_seconds or {}
    print("  stalls:    " + "  ".join(
        f"{cause}={sec:.3g}s" for cause, sec in sorted(stalls.items())))
    for kind, _busy, share in kernel_breakdown(sink)[:5]:
        print(f"    {kind:>8}: {share * 100:5.1f}% of busy time")
    if args.chrome_trace:
        path = write_chrome_trace(sink, args.chrome_trace)
        print(f"  chrome trace written to {path} "
              "(open in Perfetto or chrome://tracing)")
    if args.gantt or not args.chrome_trace:
        print(ascii_gantt(sink, width=args.gantt_width), end="")
    if args.metrics_json:
        _dump_metrics(args.metrics_json)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from .bench.tables import format_series
    from .perf import figure_series

    machine = _machine(args.machine)
    sizes = args.sizes or None
    out = figure_series(machine, args.nodes, args.impls, sizes,
                        max_tiles=args.max_tiles)
    xs = [p.n for p in next(iter(out.values()))]
    series = {impl: [round(p.tflops, 3) for p in pts]
              for impl, pts in out.items()}
    print(format_series(
        f"{args.machine}, {args.nodes} node(s): Tflop/s vs matrix size",
        "n", xs, series))
    return 0


def cmd_memory(args: argparse.Namespace) -> int:
    from .perf.memory import max_feasible_n, qdwh_footprint, round_down_to

    machine = _machine(args.machine)
    rpn = args.ranks_per_node
    if rpn is None:
        rpn = 2 if args.machine == "summit" else 8
    nmax = round_down_to(max_feasible_n(machine, args.nodes,
                                        ranks_per_node=rpn,
                                        use_gpu=not args.cpu))
    fp = qdwh_footprint(machine, args.nodes, nmax, ranks_per_node=rpn,
                        use_gpu=not args.cpu)
    print(f"{args.machine} x{args.nodes} nodes "
          f"({rpn} ranks/node, {'CPU' if args.cpu else 'GPU'}):")
    print(f"  largest feasible n: {nmax}")
    print(f"  per-rank workspace: {fp.per_rank_bytes / 2**30:.1f} GiB "
          f"of {fp.capacity_bytes / 2**30:.0f} GiB")
    print(f"  workspace overhead: {fp.overhead_factor:.1f}x the input")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .validation import validate_all

    rep = validate_all(n_numeric=args.n, max_tiles=args.max_tiles)
    print(rep.summary())
    return 0 if rep.passed else 1


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(
        prog="repro",
        description="Task-based QDWH polar decomposition "
                    "(SC-W 2023 reproduction)")
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser("polar", help="decompose a .npy matrix")
    p.add_argument("matrix", help="path to a .npy file (m x n, m >= n)")
    p.add_argument("--method", default="qdwh",
                   choices=["qdwh", "svd", "newton", "newton_scaled",
                            "dwh", "zolo"])
    p.add_argument("--output", help="save factors to this .npz path")
    p.add_argument("--iter-log", action="store_true",
                   help="print the per-iteration QDWH telemetry table")
    p.add_argument("--metrics-json",
                   help="dump the metrics registry snapshot to this path")
    p.set_defaults(fn=cmd_polar)

    p = sub.add_parser("simulate", help="one simulated performance point")
    p.add_argument("--machine", default="summit")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--n", type=int, default=40_000)
    p.add_argument("--impl", default="slate_gpu",
                   choices=["slate_gpu", "slate_cpu", "scalapack"])
    p.add_argument("--cond", type=float, default=1e16)
    p.add_argument("--nb", type=int, default=None)
    p.add_argument("--max-tiles", type=int, default=16)
    p.add_argument("--trace", help="write a chrome://tracing JSON here")
    p.add_argument("--metrics-json",
                   help="dump the metrics registry snapshot to this path")
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser(
        "trace", help="simulate a point with full timeline capture")
    p.add_argument("--machine", default="summit")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--n", type=int, default=40_000)
    p.add_argument("--impl", default="slate_gpu",
                   choices=["slate_gpu", "slate_cpu", "scalapack"])
    p.add_argument("--cond", type=float, default=1e16)
    p.add_argument("--nb", type=int, default=None)
    p.add_argument("--max-tiles", type=int, default=16)
    p.add_argument("--lookahead", type=int, default=None,
                   help="lookahead window (task-based impls)")
    p.add_argument("--chrome-trace",
                   help="write a Perfetto-loadable trace_event JSON here")
    p.add_argument("--gantt", action="store_true",
                   help="print the terminal Gantt (default when no "
                        "--chrome-trace is given)")
    p.add_argument("--gantt-width", type=int, default=72)
    p.add_argument("--metrics-json",
                   help="dump the metrics registry snapshot to this path")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("sweep", help="Tflop/s vs size sweep")
    p.add_argument("--machine", default="summit")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--impls", nargs="+",
                   default=["slate_gpu", "scalapack"])
    p.add_argument("--sizes", nargs="+", type=int)
    p.add_argument("--max-tiles", type=int, default=12)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("memory", help="feasibility from the footprint model")
    p.add_argument("--machine", default="frontier")
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--ranks-per-node", type=int, default=None)
    p.add_argument("--cpu", action="store_true",
                   help="CPU-only run (host memory capacity)")
    p.set_defaults(fn=cmd_memory)

    p = sub.add_parser("validate",
                       help="run the paper-claim acceptance matrix")
    p.add_argument("--n", type=int, default=256,
                   help="size of the measured (numeric) checks")
    p.add_argument("--max-tiles", type=int, default=10,
                   help="granularity of the simulated checks")
    p.set_defaults(fn=cmd_validate)
    return ap


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
