"""Device and machine rate models.

Task duration = flops / effective_rate(kind, tile_dim) + launch
overhead.  Effective rate = peak * kind_factor * saturation(tile_dim),
with the classic ``n / (n + n_half)`` saturation curve: a device
reaches half its kind-adjusted peak at tile edge ``n_half`` (GPUs need
much larger tiles than CPU cores to saturate — this is why the paper
tunes nb=320 for GPU runs but nb=192 for CPU runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..comm.network import NetworkModel
from ..runtime.task import ELEMENTWISE_KINDS, PANEL_KINDS, TaskKind

#: Default kind factors: fraction of peak a well-saturated kernel of
#: this class reaches.  Panel kernels (QR/Cholesky panels) are
#: latency/bandwidth bound and far from peak on any device.
_DEFAULT_KIND_FACTORS: Dict[TaskKind, float] = {
    TaskKind.GEMM: 0.90,
    TaskKind.HERK: 0.80,
    TaskKind.TRSM: 0.65,
    TaskKind.TRMM: 0.70,
    TaskKind.POTRF: 0.35,
    TaskKind.GEQRT: 0.25,
    TaskKind.TPQRT: 0.30,
    TaskKind.UNMQR: 0.75,
    TaskKind.TPMQRT: 0.70,
    TaskKind.ADD: 0.05,     # bandwidth bound
    TaskKind.SCALE: 0.05,
    TaskKind.COPY: 0.05,
    TaskKind.SET: 0.05,
    TaskKind.NORM: 0.05,
    TaskKind.REDUCE: 0.02,
    TaskKind.GEMV: 0.05,
    TaskKind.SOLVE_VEC: 0.05,
}


#: CPU cores running vendor BLAS (ESSL, AMD AOCL) on cache-resident
#: tiles get much closer to peak than a GPU does at the same tile size.
_CPU_KIND_FACTORS: Dict[TaskKind, float] = {
    **_DEFAULT_KIND_FACTORS,
    TaskKind.GEMM: 0.95,
    TaskKind.HERK: 0.90,
    TaskKind.TRSM: 0.80,
    TaskKind.TRMM: 0.85,
    TaskKind.UNMQR: 0.88,
    TaskKind.TPMQRT: 0.85,
    TaskKind.POTRF: 0.45,
    TaskKind.GEQRT: 0.30,
    TaskKind.TPQRT: 0.35,
}

#: GPU kind factors.  BLAS-3 factors sit below the CPU's: streamed
#: batched kernels on nb ~ 320 tiles lose to dispatch gaps, tile
#: fragmentation, and imperfect batching (calibrated against the
#: paper's achieved Tflop/s levels).  Elementwise kinds run at HBM
#: bandwidth: 0.013 * 7.8 Tflop/s ~ 100e9 elements/s ~ 800 GB/s, the
#: V100 HBM2 ballpark.
_GPU_KIND_FACTORS: Dict[TaskKind, float] = {
    **_DEFAULT_KIND_FACTORS,
    TaskKind.GEMM: 0.78,
    TaskKind.HERK: 0.68,
    TaskKind.TRSM: 0.55,
    TaskKind.TRMM: 0.60,
    TaskKind.UNMQR: 0.64,
    TaskKind.TPMQRT: 0.60,
    **{k: 0.013 for k in ELEMENTWISE_KINDS},
}


@dataclass(frozen=True)
class GpuModel:
    """One accelerator (a V100, or one GCD of an MI250X)."""

    name: str
    peak_gflops: float              # double-precision peak
    nb_half: int = 192              # tile edge at half saturation
    kernel_overhead: float = 8.0e-6  # launch + batch dispatch
    kind_factors: Dict[TaskKind, float] = field(
        default_factory=lambda: dict(_GPU_KIND_FACTORS))

    def rate(self, kind: TaskKind, tile_dim: int) -> float:
        """Effective Gflop/s for a kernel of ``kind`` on nb x nb tiles."""
        f = self.kind_factors.get(kind, 0.5)
        nb = max(tile_dim, 1)
        sat = nb / (nb + self.nb_half)
        return self.peak_gflops * f * sat

    def duration(self, kind: TaskKind, flops: float, tile_dim: int) -> float:
        if flops <= 0.0:
            return self.kernel_overhead
        return self.kernel_overhead + flops / (self.rate(kind, tile_dim) * 1e9)


@dataclass(frozen=True)
class CpuModel:
    """One CPU core (tasks are scheduled core-granular, as OpenMP does)."""

    name: str
    core_peak_gflops: float
    nb_half: int = 12
    kernel_overhead: float = 1.0e-6
    kind_factors: Dict[TaskKind, float] = field(
        default_factory=lambda: dict(_CPU_KIND_FACTORS))

    def rate(self, kind: TaskKind, tile_dim: int) -> float:
        f = self.kind_factors.get(kind, 0.5)
        nb = max(tile_dim, 1)
        sat = nb / (nb + self.nb_half)
        return self.core_peak_gflops * f * sat

    def duration(self, kind: TaskKind, flops: float, tile_dim: int) -> float:
        if flops <= 0.0:
            return self.kernel_overhead
        return self.kernel_overhead + flops / (self.rate(kind, tile_dim) * 1e9)


@dataclass(frozen=True)
class RankResources:
    """Execution resources of one MPI rank in a run configuration."""

    cores: int
    gpus: int

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("each rank needs at least one core")
        if self.gpus < 0:
            raise ValueError("gpus must be >= 0")


@dataclass(frozen=True)
class MachineModel:
    """A full machine: node composition + device models + network."""

    name: str
    cores_per_node: int          # usable cores (OS-reserved excluded)
    gpus_per_node: int
    cpu: CpuModel
    gpu: Optional[GpuModel]
    network: NetworkModel

    def ranks(self, nodes: int, ranks_per_node: int) -> int:
        if nodes < 1 or ranks_per_node < 1:
            raise ValueError("nodes and ranks_per_node must be >= 1")
        if ranks_per_node > self.cores_per_node:
            raise ValueError(
                f"{ranks_per_node} ranks/node exceeds {self.cores_per_node} "
                f"usable cores on {self.name}")
        return nodes * ranks_per_node

    def rank_resources(self, ranks_per_node: int, *,
                       use_gpu: bool) -> RankResources:
        """Split a node's cores/GPUs evenly over its ranks."""
        cores = max(1, self.cores_per_node // ranks_per_node)
        gpus = 0
        if use_gpu:
            if self.gpu is None:
                raise ValueError(f"{self.name} has no GPU model")
            gpus = self.gpus_per_node // ranks_per_node
            if gpus == 0:
                raise ValueError(
                    f"{ranks_per_node} ranks/node leaves no GPU per rank "
                    f"on {self.name} ({self.gpus_per_node} GPUs/node)")
        return RankResources(cores=cores, gpus=gpus)

    def node_of_rank(self, rank: int, ranks_per_node: int) -> int:
        return rank // ranks_per_node

    def task_duration(self, kind: TaskKind, flops: float, tile_dim: int,
                      coarse: float, on_gpu: bool,
                      host_cores: int = 1,
                      gang: int = 1) -> float:
        """Duration of one (possibly coarsened) task.

        A task with ``coarse > 1`` stands for a *group* of real-nb
        kernels with the same total flops (the perf model's tile-grid
        coarsening).  Such a group is *gang-executed*: the scheduler
        gives each rank a single aggregated slot and passes ``gang`` =
        the number of physical devices (cores or GPUs) behind it, so
        the group's throughput scales with the rank's hardware exactly
        as real fine-grained tasks would spread over it.

        For panel kinds the group further decomposes as ~coarse
        independent nb-wide sub-panels (CPU-resident, panel rates,
        spread over the rank's ``host_cores`` — the tree panel's
        row-parallel geqrts) plus trailing updates (device BLAS-3
        rates); pricing the whole group serially at panel rates would
        wildly overcharge the critical path.
        """
        dev = self.gpu if (on_gpu and self.gpu is not None) else self.cpu
        if flops <= 0.0:
            return dev.kernel_overhead
        gang_f = max(1.0, min(float(gang), coarse * coarse))
        if kind in PANEL_KINDS and coarse > 1.01:
            panel_frac = 1.0 / coarse
            concurrency = max(1.0, min(coarse, float(host_cores)))
            update_kind = (TaskKind.HERK if kind is TaskKind.POTRF
                           else TaskKind.TPMQRT)
            t_panel = (panel_frac * flops
                       / (self.cpu.rate(kind, tile_dim) * 1e9
                          * concurrency))
            t_upd = ((1.0 - panel_frac) * flops
                     / (dev.rate(update_kind, tile_dim) * 1e9 * gang_f))
            return dev.kernel_overhead + t_panel + t_upd
        return (dev.kernel_overhead
                + (dev.duration(kind, flops, tile_dim)
                   - dev.kernel_overhead) / gang_f)
