"""Frontier node model (ORNL, HPE Cray EX).

Per the paper's Section 7.1: 64-core EPYC (8 reserved -> 56 usable),
4 MI250X GPUs each exposing 2 GCDs (8 GCDs/node, each treated as one
GPU), Slingshot NICs attached to the GPUs (GPU-aware MPI pays no
staging penalty — the paper credits this for SLATE's Frontier
behaviour).

Rates:
* MI250X GCD: 23.9 Tflop/s DP vector peak; sustained dgemm on
  nb ~ 320 tiles is a modest fraction of that (large nb_half),
  consistent with the paper's ~180 Tflop/s on 128 GCDs.
* EPYC core: ~3.5 GHz x 16 DP flops/cycle ~ 56 Gflop/s nominal, but
  QDWH-relevant sustained per-core throughput is lower; 36 Gflop/s.

SLATE runs use 8 ranks/node (1 GCD each); ScaLAPACK runs use 56
ranks/node — both from the paper.
"""

from __future__ import annotations

from ..comm.network import NetworkModel
from .machine import CpuModel, GpuModel, MachineModel

SLATE_RANKS_PER_NODE = 8
SCALAPACK_RANKS_PER_NODE = 56

BEST_NB_GPU = 320
BEST_NB_CPU = 192


def frontier() -> MachineModel:
    """The Frontier machine model."""
    return MachineModel(
        name="frontier",
        cores_per_node=56,
        gpus_per_node=8,  # GCDs
        cpu=CpuModel(
            name="EPYC-7A53",
            core_peak_gflops=36.0,
            nb_half=12,
            kernel_overhead=1.0e-6,
        ),
        gpu=GpuModel(
            name="MI250X-GCD",
            # Matrix-core DP peak per GCD; dgemm engages the MFMA
            # units (47.9 Tflop/s), far from saturated at nb = 320.
            peak_gflops=47900.0,
            nb_half=960,     # GCDs need very big tiles to saturate
            kernel_overhead=10.0e-6,
        ),
        network=NetworkModel(
            # Slingshot-11: 4 x 25 GB/s NICs per node -> ~12.5 GB/s
            # per GCD-rank injection.
            inter_latency=2.0e-6,
            inter_bandwidth=12.5e9,
            # Infinity Fabric between GCDs: 50-200 GB/s.
            intra_latency=0.5e-6,
            intra_bandwidth=100.0e9,
            # CPU<->GCD Infinity Fabric: 36 GB/s each direction.
            h2d_latency=5.0e-6,
            h2d_bandwidth=36.0e9,
            nic_on_gpu=True,  # the Frontier advantage
        ),
    )
