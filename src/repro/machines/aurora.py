"""Aurora node model (ANL, HPE Cray EX — Intel exascale system).

The paper's contribution list: "SLATE also supports SYCL for Intel
GPUs on the upcoming *Aurora* system."  Aurora was 'upcoming' at
publication time; this model uses the published specs so the
portability claim can be exercised across all three vendors:

* 2x 52-core Xeon Max 9470 (Sapphire Rapids + HBM); 8 cores reserved
  -> 96 usable.
* 6x Intel Data Center GPU Max 1550 (Ponte Vecchio), each with 2
  stacks ("tiles") — by analogy with Frontier's GCDs, one rank per
  stack: 12 GPU ranks per node.  Stack DP vector peak ~26 Tflop/s
  (matrix engines ~52).
* 8x HPE Slingshot-11 NICs per node, attached near the GPUs
  (GPU-aware MPI effective, like Frontier).
"""

from __future__ import annotations

from ..comm.network import NetworkModel
from .machine import CpuModel, GpuModel, MachineModel

SLATE_RANKS_PER_NODE = 12
SCALAPACK_RANKS_PER_NODE = 96

BEST_NB_GPU = 320
BEST_NB_CPU = 192


def aurora() -> MachineModel:
    """The Aurora machine model (Intel CPU + GPU, SYCL backend)."""
    return MachineModel(
        name="aurora",
        cores_per_node=96,
        gpus_per_node=12,  # PVC stacks
        cpu=CpuModel(
            name="XeonMax-9470",
            core_peak_gflops=44.8,  # 2.8 GHz x 16 DP flops/cycle (AVX-512)
            nb_half=12,
            kernel_overhead=1.0e-6,
        ),
        gpu=GpuModel(
            name="PVC-stack",
            # XMX matrix-engine DP peak per stack; far from saturated
            # at nb = 320, like the MI250X GCDs.
            peak_gflops=52000.0,
            nb_half=1024,
            kernel_overhead=10.0e-6,
        ),
        network=NetworkModel(
            # 8 x 25 GB/s Slingshot NICs over 12 GPU ranks.
            inter_latency=2.0e-6,
            inter_bandwidth=16.6e9,
            # Xe-Link between stacks.
            intra_latency=0.5e-6,
            intra_bandwidth=100.0e9,
            h2d_latency=5.0e-6,
            h2d_bandwidth=64.0e9,  # PCIe5 x16 + fabric
            nic_on_gpu=True,
        ),
    )
