"""Machine models: device rates, node composition, network parameters.

Presets model the paper's two testbeds:

* :func:`summit` — IBM POWER9 + 6x NVIDIA V100 per node, NIC on CPU.
* :func:`frontier` — AMD EPYC + 4x MI250X (8 GCDs) per node, NIC on GPU.

Rates are calibrated so the simulated Tflop/s curves land in the
paper's regime; see EXPERIMENTS.md for per-figure paper-vs-measured.
"""

from .machine import CpuModel, GpuModel, MachineModel, RankResources
from .summit import summit
from .frontier import frontier
from .aurora import aurora

__all__ = [
    "CpuModel",
    "GpuModel",
    "MachineModel",
    "RankResources",
    "summit",
    "frontier",
    "aurora",
]
