"""Summit node model (ORNL, IBM AC922).

Per the paper's Section 7.1: 2x 22-core POWER9 (2 cores reserved for
the OS -> 42 usable), 6 NVIDIA V100 GPUs on NVLink, dual-rail EDR
InfiniBand NICs attached to the CPUs (so GPU-aware MPI does not help —
all wire traffic stages through host memory).

Rates:
* V100 double-precision peak 7.8 Tflop/s; dgemm on nb ~ 320 tiles in
  batched/stream mode lands well below peak — nb_half=224 captures the
  measured saturation knee.
* POWER9 core: 3.07 GHz x 8 DP flops/cycle ~ 24.6 Gflop/s peak;
  ESSL dgemm reaches ~85% on cache-resident tiles (nb ~ 192).

SLATE runs on Summit use 2 ranks/node (3 GPUs + 21 cores each);
ScaLAPACK runs use 42 ranks/node (1 core each) — both from the paper.
"""

from __future__ import annotations

from ..comm.network import NetworkModel
from .machine import CpuModel, GpuModel, MachineModel

#: Ranks-per-node settings used by the paper's runs.
SLATE_RANKS_PER_NODE = 2
SCALAPACK_RANKS_PER_NODE = 42

#: Tile sizes the paper's tuning found best.
BEST_NB_GPU = 320
BEST_NB_CPU = 192


def summit() -> MachineModel:
    """The Summit machine model."""
    return MachineModel(
        name="summit",
        cores_per_node=42,
        gpus_per_node=6,
        cpu=CpuModel(
            name="POWER9",
            core_peak_gflops=24.6,
            nb_half=12,
            kernel_overhead=1.0e-6,
        ),
        gpu=GpuModel(
            name="V100",
            peak_gflops=7800.0,
            nb_half=224,
            kernel_overhead=8.0e-6,
        ),
        network=NetworkModel(
            # Dual-rail EDR: 2 x 12.5 GB/s injection per node, shared
            # by the node's 2 SLATE ranks -> ~11.5 GB/s per rank.
            inter_latency=1.5e-6,
            inter_bandwidth=11.5e9,
            # Shared-memory / X-bus within the node.
            intra_latency=0.5e-6,
            intra_bandwidth=64.0e9,
            # NVLink2 CPU<->GPU: 50 GB/s per direction per GPU.
            h2d_latency=5.0e-6,
            h2d_bandwidth=45.0e9,
            nic_on_gpu=False,  # NICs hang off the CPUs on Summit
        ),
    )
