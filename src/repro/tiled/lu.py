"""Tiled LU factorization with partial pivoting, and gecondest.

Section 6.3 of the paper names two routes to the condition estimate:
"the LU factorization followed by a condition number estimator, or the
QR factorization followed by a condition number estimator of the upper
triangular matrix R."  QDWH uses the QR route; this module implements
the LU route so both are available (and comparable — see the unit
tests).

The panel factorization follows the ScaLAPACK pattern: the tile column
is gathered to the diagonal tile's owner, factored with row pivoting
(LAPACK getrf), and scattered back; pivot swaps are then applied across
each tile column.  Gather/scatter communication is captured by the
panel task reading and writing every tile of the column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np
import scipy.linalg as sla

from .. import flops as F
from ..core.estimators import SOLVE, one_norm_estimator
from ..dist.matrix import DistMatrix
from ..runtime.executor import Runtime
from ..runtime.task import TaskKind
from .norms import ScalarResult, norm_one


@dataclass
class LUFactors:
    """A tiled LU factorization P A = L U in compact tile storage.

    ``piv[k]`` holds the LAPACK-style local pivot indices of panel k
    (relative to the panel's top row).
    """

    a: DistMatrix
    piv: Dict[int, np.ndarray] = field(default_factory=dict)
    piv_mat: int = -1   # pseudo-matrix id for pivot-vector refs
    singular: bool = False

    def piv_ref(self, k: int):
        return (self.piv_mat, k, 0)


def _gather_panel(a: DistMatrix, k: int) -> np.ndarray:
    rows = sum(a.tile_rows(i) for i in range(k, a.mt))
    kb = a.tile_cols(k)
    panel = np.empty((rows, kb), dtype=a.dtype)
    off = 0
    for i in range(k, a.mt):
        h = a.tile_rows(i)
        panel[off:off + h] = a.tile(i, k)
        off += h
    return panel


def _scatter_panel(a: DistMatrix, k: int, panel: np.ndarray) -> None:
    off = 0
    for i in range(k, a.mt):
        h = a.tile_rows(i)
        a.tile(i, k)[...] = panel[off:off + h]
        off += h


def _apply_swaps_column(a: DistMatrix, k: int, j: int,
                        piv: np.ndarray) -> None:
    """Apply panel-k pivot swaps to tile column j (rows k..mt-1)."""
    col = _gather_column(a, k, j)
    for i, p in enumerate(piv):
        if p != i:
            col[[i, p]] = col[[p, i]]
    _scatter_column(a, k, j, col)


def _gather_column(a: DistMatrix, k: int, j: int) -> np.ndarray:
    rows = sum(a.tile_rows(i) for i in range(k, a.mt))
    col = np.empty((rows, a.tile_cols(j)), dtype=a.dtype)
    off = 0
    for i in range(k, a.mt):
        h = a.tile_rows(i)
        col[off:off + h] = a.tile(i, j)
        off += h
    return col


def _scatter_column(a: DistMatrix, k: int, j: int,
                    col: np.ndarray) -> None:
    off = 0
    for i in range(k, a.mt):
        h = a.tile_rows(i)
        a.tile(i, j)[...] = col[off:off + h]
        off += h


def getrf(rt: Runtime, a: DistMatrix) -> LUFactors:
    """Tiled LU with partial pivoting: P A = L U, in place.

    L (unit lower) and U overwrite A; pivots are stored per panel.
    Raises nothing on exact singularity — the ``singular`` flag is set
    and downstream condition estimates return 0, matching LAPACK's
    info-based protocol.
    """
    rt.begin_op()
    if a.m != a.n:
        raise ValueError(f"tiled getrf expects a square matrix, got "
                         f"{a.shape}")
    if a.row_heights != a.col_widths:
        raise ValueError("getrf needs square diagonal tiles")
    fac = LUFactors(a=a, piv_mat=rt.new_matrix_id())
    nt = a.nt
    for k in range(nt):
        rt.advance_phase()
        kb = a.tile_cols(k)
        pref = fac.piv_ref(k)
        rt.register_tiles([pref], kb * 4)
        col_refs = tuple(a.ref(i, k) for i in range(k, a.mt))
        rows = sum(a.tile_rows(i) for i in range(k, a.mt))

        def panel(k=k, kb=kb):
            block = _gather_panel(a, k)
            lu, piv = sla.lu_factor(block, check_finite=False)
            if np.any(np.diagonal(lu)[:kb] == 0):
                fac.singular = True
            _scatter_panel(a, k, np.ascontiguousarray(lu))
            fac.piv[k] = piv

        rt.submit(TaskKind.GEQRT,  # panel-class kernel (CPU, latency)
                  reads=col_refs, writes=col_refs + (pref,),
                  rank=a.owner(k, k), flops=F.getrf(rows, kb),
                  tile_dim=a.nb, fn=panel,
                  bytes_out=rows * kb * a.dtype.itemsize + kb * 4,
                  label=f"getrf.panel({k})")

        # Pivot swaps + U row + trailing update per tile column.
        for j in range(nt):
            if j == k:
                continue
            cj_refs = tuple(a.ref(i, j) for i in range(k, a.mt))

            def swaps(k=k, j=j):
                _apply_swaps_column(a, k, j, fac.piv[k])

            rt.submit(TaskKind.COPY, reads=cj_refs + (pref,),
                      writes=cj_refs, rank=a.owner(k, j),
                      flops=float(kb * a.tile_cols(j)),
                      bytes_out=rows * a.tile_cols(j) * a.dtype.itemsize,
                      tile_dim=a.nb, fn=swaps, label=f"laswp({k},{j})")

        for j in range(k + 1, nt):

            def urow(k=k, j=j):
                lkk = np.tril(a.tile(k, k), -1)
                lkk[np.diag_indices(min(lkk.shape))] = 1.0
                a.tile(k, j)[...] = sla.solve_triangular(
                    lkk, a.tile(k, j), lower=True, unit_diagonal=True,
                    check_finite=False)

            rt.submit(TaskKind.TRSM, reads=(a.ref(k, k), a.ref(k, j)),
                      writes=(a.ref(k, j),), rank=a.owner(k, j),
                      flops=F.trsm(kb, a.tile_cols(j)), tile_dim=a.nb,
                      fn=urow, bytes_out=a.tile_nbytes(k, j),
                      label=f"getrf.trsm({k},{j})")

        for i in range(k + 1, a.mt):
            for j in range(k + 1, nt):

                def update(i=i, j=j, k=k):
                    a.tile(i, j)[...] -= a.tile(i, k) @ a.tile(k, j)

                rt.submit(TaskKind.GEMM,
                          reads=(a.ref(i, k), a.ref(k, j)),
                          writes=(a.ref(i, j),), rank=a.owner(i, j),
                          flops=F.gemm(a.tile_rows(i), a.tile_cols(j), kb),
                          tile_dim=a.nb, fn=update,
                          bytes_out=a.tile_nbytes(i, j),
                          label=f"getrf.upd({i},{j},{k})")
    return fac


# ---------------------------------------------------------------------------
# Solves with the tiled LU factors (vector RHS — what gecondest needs)
# ---------------------------------------------------------------------------

def _dense_lu(fac: LUFactors) -> np.ndarray:
    """Reassemble the compact LU tile storage into a dense matrix."""
    return fac.a.to_array()


def getrs_vec(rt: Runtime, fac: LUFactors, b: np.ndarray, *,
              conj_trans: bool = False) -> np.ndarray:
    """Solve op(A) x = b through the tiled LU factors.

    The sweep runs as one tiled chain of per-tile triangular solves and
    gemv updates; for clarity the numeric payload reassembles the
    factor blocks tile-by-tile (the task structure — and therefore the
    simulated cost — is the per-tile chain).
    """
    a = fac.a
    n = a.n
    if b.shape != (n,):
        raise ValueError(f"b must be a length-{n} vector")
    x = np.array(b, dtype=a.dtype, copy=True)
    nt = a.nt
    offs = a.col_offsets
    # Every solve step reads and writes the shared vector ``x`` (a
    # captured numpy buffer the tile-dependency tracker cannot see), so
    # all steps declare one pseudo-tile as in/out: the RAW/WAW chain on
    # it serializes the sweep — without it the threaded backend would
    # race the substitution steps against each other.
    xref = rt.new_scalar_ref(n * 8)

    def seg(k):
        return slice(offs[k], offs[k] + a.tile_cols(k))

    if not conj_trans:
        # Apply P, then L y = Pb (forward), then U x = y (backward).
        def apply_pivots():
            for k in range(nt):
                piv = fac.piv[k]
                sub = x[offs[k]:]
                for i, p in enumerate(piv):
                    if p != i:
                        sub[[i, p]] = sub[[p, i]]

        rt.submit(TaskKind.COPY,
                  reads=tuple(fac.piv_ref(k) for k in range(nt)),
                  writes=(xref,), rank=0, bytes_out=n * 8,
                  fn=apply_pivots, label="getrs.pivots")
        for k in range(nt):
            for j in range(k):
                # Below-diagonal tiles hold L blocks verbatim.
                def lupd(k=k, j=j):
                    x[seg(k)] -= a.tile(k, j) @ x[seg(j)]

                rt.submit(TaskKind.GEMV, reads=(a.ref(k, j),),
                          writes=(xref,),
                          rank=a.owner(k, j),
                          flops=F.gemm(a.tile_cols(k), 1, a.tile_cols(j)),
                          fn=lupd, bytes_out=a.tile_cols(k) * 8,
                          label=f"getrs.l({k},{j})")

            def ldiag(k=k):
                lkk = np.tril(a.tile(k, k), -1)
                lkk[np.diag_indices(min(lkk.shape))] = 1.0
                x[seg(k)] = sla.solve_triangular(
                    lkk, x[seg(k)], lower=True, unit_diagonal=True,
                    check_finite=False)

            rt.submit(TaskKind.SOLVE_VEC, reads=(a.ref(k, k),),
                      writes=(xref,), rank=a.owner(k, k),
                      flops=float(a.tile_cols(k)) ** 2, fn=ldiag,
                      bytes_out=a.tile_cols(k) * 8,
                      label=f"getrs.ldiag({k})")
        for k in range(nt - 1, -1, -1):
            for j in range(k + 1, nt):
                rt.submit(TaskKind.GEMV, reads=(a.ref(k, j),),
                          writes=(xref,),
                          rank=a.owner(k, j),
                          flops=F.gemm(a.tile_cols(k), 1, a.tile_cols(j)),
                          fn=(lambda k=k, j=j: x.__setitem__(
                              seg(k), x[seg(k)] - a.tile(k, j) @ x[seg(j)])),
                          bytes_out=a.tile_cols(k) * 8,
                          label=f"getrs.u({k},{j})")

            def udiag(k=k):
                x[seg(k)] = sla.solve_triangular(
                    np.triu(a.tile(k, k)), x[seg(k)], lower=False,
                    check_finite=False)

            rt.submit(TaskKind.SOLVE_VEC, reads=(a.ref(k, k),),
                      writes=(xref,), rank=a.owner(k, k),
                      flops=float(a.tile_cols(k)) ** 2, fn=udiag,
                      bytes_out=a.tile_cols(k) * 8,
                      label=f"getrs.udiag({k})")
        rt.sync()  # deferred backend: the solve bodies fill `x`
        return x

    # conj_trans: A^H x = b  <=>  U^H y = b, L^H z = y, x = P^T z.
    for k in range(nt):
        for j in range(k):
            rt.submit(TaskKind.GEMV, reads=(a.ref(j, k),),
                      writes=(xref,), rank=a.owner(j, k),
                      flops=F.gemm(a.tile_cols(k), 1, a.tile_cols(j)),
                      fn=(lambda k=k, j=j: x.__setitem__(
                          seg(k),
                          x[seg(k)] - a.tile(j, k).conj().T @ x[seg(j)])),
                      bytes_out=a.tile_cols(k) * 8,
                      label=f"getrs.uh({k},{j})")

        def uhdiag(k=k):
            x[seg(k)] = sla.solve_triangular(
                np.triu(a.tile(k, k)), x[seg(k)], lower=False, trans="C",
                check_finite=False)

        rt.submit(TaskKind.SOLVE_VEC, reads=(a.ref(k, k),),
                  writes=(xref,), rank=a.owner(k, k),
                  flops=float(a.tile_cols(k)) ** 2, fn=uhdiag,
                  bytes_out=a.tile_cols(k) * 8,
                  label=f"getrs.uhdiag({k})")
    for k in range(nt - 1, -1, -1):
        # L^H is upper triangular: backward substitution interleaves
        # the off-diagonal updates (using already-solved x[j], j > k)
        # with the unit-diagonal solve of block k.
        for j in range(k + 1, nt):

            def lhupd(k=k, j=j):
                x[seg(k)] -= a.tile(j, k).conj().T @ x[seg(j)]

            rt.submit(TaskKind.GEMV, reads=(a.ref(j, k),),
                      writes=(xref,), rank=a.owner(j, k),
                      flops=F.gemm(a.tile_cols(k), 1, a.tile_cols(j)),
                      fn=lhupd, bytes_out=a.tile_cols(k) * 8,
                      label=f"getrs.lh({k},{j})")

        def lhdiag(k=k):
            lkk = np.tril(a.tile(k, k), -1)
            lkk[np.diag_indices(min(lkk.shape))] = 1.0
            x[seg(k)] = sla.solve_triangular(
                lkk, x[seg(k)], lower=True, unit_diagonal=True,
                trans="C", check_finite=False)

        rt.submit(TaskKind.SOLVE_VEC, reads=(a.ref(k, k),),
                  writes=(xref,), rank=a.owner(k, k),
                  flops=float(a.tile_cols(k)) ** 2, fn=lhdiag,
                  bytes_out=a.tile_cols(k) * 8,
                  label=f"getrs.lhdiag({k})")

    def undo_pivots():
        # x = P^T w: undo the panel swaps in reverse order.
        for k in range(nt - 1, -1, -1):
            piv = fac.piv[k]
            sub = x[offs[k]:]
            for i in range(len(piv) - 1, -1, -1):
                p = piv[i]
                if p != i:
                    sub[[i, p]] = sub[[p, i]]

    rt.submit(TaskKind.COPY,
              reads=tuple(fac.piv_ref(k) for k in range(nt)),
              writes=(xref,), rank=0, bytes_out=n * 8,
              flops=float(n), fn=undo_pivots, label="getrs.pivots.T")
    rt.sync()  # deferred backend: the solve bodies fill `x`
    return x


def gecondest_tiled(rt: Runtime, a: DistMatrix, *,
                    fac: Optional[LUFactors] = None) -> ScalarResult:
    """Reciprocal 1-norm condition estimate via tiled LU (Section 6.3).

    Factors A (destroying it) unless ``fac`` is provided, then drives
    the shared Hager reverse-communication core through the tiled LU
    solves — the same single-implementation design the paper describes.
    Numeric mode only (the QR route, :func:`trcondest_tiled`, is the
    one QDWH uses and supports symbolic runs).
    """
    if not rt.numeric:
        raise RuntimeError("gecondest_tiled requires numeric mode; the "
                           "QR-route trcondest_tiled covers symbolic runs")
    anorm = norm_one(rt, a).value
    if fac is None:
        fac = getrf(rt, a)
    rt.sync()  # deferred backend: the panel bodies set `fac.singular`
    if anorm == 0.0 or fac.singular:
        return _const(rt, 0.0)
    n = a.n
    gen = one_norm_estimator(n, dtype=a.dtype)
    try:
        kind, vec = next(gen)
        while True:
            out = getrs_vec(rt, fac, np.asarray(vec).ravel(),
                            conj_trans=(kind != SOLVE))
            kind, vec = gen.send(out)
    except StopIteration as stop:
        inv_est = float(stop.value)
    rcond = 0.0 if inv_est == 0.0 else 1.0 / (anorm * inv_est)
    return _const(rt, rcond)


def _const(rt: Runtime, value: float) -> ScalarResult:
    out = rt.new_scalar_ref()
    rt.submit(TaskKind.REDUCE, reads=(), writes=(out,), rank=0,
              bytes_out=8, label="gecondest.final")
    return ScalarResult(ref=out, _box=[value])
