"""Numeric single-tile kernels.

These are the payloads of the runtime's tasks: plain numpy/LAPACK math
on one or two tiles.  The QR kernels use the compact WY (blocked
Householder) representation:

    Q = I - V T V^H

with V unit-lower-trapezoidal and T upper-triangular, exactly LAPACK's
``geqrt`` storage: the factored tile holds R in its upper triangle and
the V columns below the diagonal; T is kept in a side buffer.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg as sla


def build_t(v: np.ndarray, tau: np.ndarray) -> np.ndarray:
    """Accumulate the T factor of a blocked reflector (LAPACK larft).

    ``v`` is m x k unit-lower-trapezoidal (implicit unit diagonal is
    expected to already be in place), ``tau`` the k reflector scalars.
    Returns upper-triangular T with ``Q = I - V T V^H``.
    """
    m, k = v.shape
    t = np.zeros((k, k), dtype=v.dtype)
    for j in range(k):
        t[j, j] = tau[j]
        if j > 0 and tau[j] != 0:
            # t[:j, j] = -tau[j] * T[:j, :j] @ (V[:, :j]^H v_j)
            w = v[:, :j].conj().T @ v[:, j]
            t[:j, j] = -tau[j] * (t[:j, :j] @ w)
    return t


def _unit_lower(v_raw: np.ndarray, k: int) -> np.ndarray:
    """Extract V (unit diagonal, zero upper) from raw QR storage."""
    v = np.tril(v_raw, -1)
    v[np.diag_indices(min(v.shape[0], k))] = 1.0
    return v[:, :k]


def geqrt_kernel(tile: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """QR-factor one tile; returns (factored tile, T).

    The returned tile holds R in its upper triangle and the Householder
    vectors below the diagonal (LAPACK compact form).
    """
    m, n = tile.shape
    k = min(m, n)
    (qr_raw, tau), _r = sla.qr(tile, mode="raw")
    v = _unit_lower(qr_raw, k)
    t = build_t(v, tau)
    return np.ascontiguousarray(qr_raw), t


def apply_q_kernel(v_tile: np.ndarray, t: np.ndarray, c: np.ndarray,
                   conj_trans: bool) -> np.ndarray:
    """Apply Q or Q^H (from one factored tile) to C, returning new C.

    ``v_tile`` is the compact geqrt output (R upper + V lower); only
    the V part is used.  Q = I - V T V^H; Q^H = I - V T^H V^H.
    """
    k = t.shape[0]
    v = _unit_lower(v_tile, k)
    tt = t.conj().T if conj_trans else t
    w = v.conj().T @ c          # k x nc
    return c - v @ (tt @ w)


def tpqrt_kernel(r_upper: np.ndarray, a_bot: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Couple a k x k upper-triangular R block with an mb x k tile.

    Factors ``[triu(R); A_bot] = Q R_new``.  Returns
    ``(R_new, V_top, V_bot, T)``:

    * ``R_new`` — k x k, upper triangular (replaces the R part of the
      diagonal tile; the diagonal tile's geqrt reflectors below its
      diagonal are untouched).
    * ``V_top`` — k x k unit-lower reflector block.  PLASMA's
      structured TS kernel has V_top = I; factoring the dense stack
      yields a general unit-lower block, stored in the side buffer.
    * ``V_bot`` — mb x k reflector block.
    * ``T`` — k x k upper-triangular block-reflector factor for the
      stacked V = [V_top; V_bot].
    """
    k = r_upper.shape[1]
    stacked = np.vstack([np.triu(r_upper[:k, :k]), a_bot])
    (qr_raw, tau), _r = sla.qr(stacked, mode="raw")
    v = _unit_lower(qr_raw, k)
    t = build_t(v, tau)
    r_new = np.triu(qr_raw[:k, :k])
    v_top = np.ascontiguousarray(v[:k])
    v_bot = np.ascontiguousarray(v[k:])
    return r_new, v_top, v_bot, t


def tpmqrt_kernel(v_top: np.ndarray, v_bot: np.ndarray, t: np.ndarray,
                  c_top: np.ndarray, c_bot: np.ndarray,
                  conj_trans: bool) -> Tuple[np.ndarray, np.ndarray]:
    """Apply a coupled reflector pair to the stacked [C_top; C_bot].

    ``c_top`` must be the k x nc slice the reflectors act on (the
    first k rows of the diagonal tile row); ``c_bot`` the full mate.
    """
    tt = t.conj().T if conj_trans else t
    w = v_top.conj().T @ c_top + v_bot.conj().T @ c_bot   # k x nc
    w = tt @ w
    return c_top - v_top @ w, c_bot - v_bot @ w


def potrf_kernel(tile: np.ndarray) -> np.ndarray:
    """Cholesky of one SPD tile (lower)."""
    return np.linalg.cholesky(tile)


def trsm_kernel(tri: np.ndarray, b: np.ndarray, *, lower: bool,
                conj_trans: bool, side_left: bool = True) -> np.ndarray:
    """Triangular solve against one tile."""
    if side_left:
        return sla.solve_triangular(tri, b, lower=lower,
                                    trans="C" if conj_trans else "N",
                                    check_finite=False)
    if conj_trans:
        # X tri^H = b  <=>  X^H = tri^{-1} b^H.
        xh = sla.solve_triangular(tri, b.conj().T, lower=lower, trans="N",
                                  check_finite=False)
        return xh.conj().T
    # X tri = b  <=>  tri^T X^T = b^T.
    xt = sla.solve_triangular(tri, b.T, lower=lower, trans="T",
                              check_finite=False)
    return xt.T
