"""Tiled level-3 BLAS and element-wise matrix operations.

Conventions:

* ``op`` flags are ``"N"`` (as-is) or ``"C"`` (conjugate transpose).
* Owner-computes: each task runs on the rank owning its output tile.
* Every tile update is one task; accumulation over the k dimension is
  a dependency chain on the output tile (SLATE's gemm does the same —
  its internal reduction is sequenced through tile ownership).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import flops as F
from ..dist.matrix import DistMatrix
from ..runtime.executor import Runtime
from ..runtime.task import TaskKind


def _op_tile(mat: DistMatrix, i: int, j: int, op: str) -> np.ndarray:
    """Tile (i, j) of op(M): for op='C' the logical tile is M[j,i]^H."""
    if op == "N":
        return mat.tile(i, j)
    return mat.tile(j, i).conj().T


def _op_dims(mat: DistMatrix, op: str):
    """(rows, cols, mt, nt) of op(M)."""
    if op == "N":
        return mat.m, mat.n, mat.mt, mat.nt
    return mat.n, mat.m, mat.nt, mat.mt


def _check_op(op: str) -> None:
    if op not in ("N", "C"):
        raise ValueError(f"op must be 'N' or 'C', got {op!r}")


def gemm(rt: Runtime, alpha: complex, a: DistMatrix, b: DistMatrix,
         beta: complex, c: DistMatrix, *, opa: str = "N", opb: str = "N"
         ) -> None:
    """C = alpha op(A) op(B) + beta C, tiled."""
    rt.begin_op()
    _check_op(opa)
    _check_op(opb)
    am, ak, amt, akt = _op_dims(a, opa)
    bk, bn, bkt, bnt = _op_dims(b, opb)
    if ak != bk or am != c.m or bn != c.n:
        raise ValueError(
            f"gemm shape mismatch: op(A) {am}x{ak}, op(B) {bk}x{bn}, "
            f"C {c.m}x{c.n}")
    if a.nb != b.nb or a.nb != c.nb:
        raise ValueError("gemm requires a uniform tile size")
    del amt, bnt
    kt = akt
    if kt != bkt:
        raise ValueError("inner tile counts differ")
    for i in range(c.mt):
        for j in range(c.nt):
            cref = c.ref(i, j)
            rank = c.owner(i, j)
            for k in range(kt):
                aref = a.ref(i, k) if opa == "N" else a.ref(k, i)
                bref = b.ref(k, j) if opb == "N" else b.ref(j, k)
                kb = (a.tile_cols(k) if opa == "N" else a.tile_rows(k))
                fl = F.gemm(c.tile_rows(i), c.tile_cols(j), kb)

                def body(i=i, j=j, k=k, first=(k == 0)):
                    at = _op_tile(a, i, k, opa)
                    bt = _op_tile(b, k, j, opb)
                    ct = c.tile(i, j)
                    if first:
                        if beta == 0:
                            ct[...] = 0
                        elif beta != 1:
                            ct *= c.dtype.type(beta)
                    ct += c.dtype.type(alpha) * (at @ bt)

                rt.submit(TaskKind.GEMM, reads=(aref, bref),
                          writes=(cref,), rank=rank, flops=fl,
                          tile_dim=c.nb, fn=body,
                          bytes_out=c.tile_nbytes(i, j),
                          label=f"gemm({i},{j},{k})")


def herk(rt: Runtime, alpha: float, a: DistMatrix, beta: float,
         c: DistMatrix, *, opa: str = "N") -> None:
    """C = alpha op(A) op(A)^H + beta C on the lower triangle of C.

    With opa='C' this computes alpha A^H A + beta C.  The strictly
    upper triangle of C is kept Hermitian-consistent tile-wise (the
    diagonal tiles are updated symmetrically; off-diagonal upper tiles
    are not touched — consumers must respect uplo, as SLATE's
    HermitianMatrix does).
    """
    rt.begin_op()
    _check_op(opa)
    an, ak, _, akt = _op_dims(a, opa)
    if an != c.m or c.m != c.n:
        raise ValueError(
            f"herk shape mismatch: op(A) {an}x{ak}, C {c.m}x{c.n}")
    kt = akt
    for i in range(c.mt):
        for j in range(i + 1):
            cref = c.ref(i, j)
            rank = c.owner(i, j)
            for k in range(kt):
                arefs = ({a.ref(i, k), a.ref(j, k)} if opa == "N"
                         else {a.ref(k, i), a.ref(k, j)})
                kb = (a.tile_cols(k) if opa == "N" else a.tile_rows(k))
                fl = (F.herk(c.tile_rows(i), kb) if i == j
                      else F.gemm(c.tile_rows(i), c.tile_cols(j), kb))

                def body(i=i, j=j, k=k, first=(k == 0)):
                    ai = _op_tile(a, i, k, opa)
                    aj = _op_tile(a, j, k, opa)
                    ct = c.tile(i, j)
                    if first:
                        if beta == 0:
                            ct[...] = 0
                        elif beta != 1:
                            ct *= c.dtype.type(beta)
                    upd = c.dtype.type(alpha) * (ai @ aj.conj().T)
                    if i == j:
                        # Keep the diagonal tile exactly Hermitian.
                        upd = 0.5 * (upd + upd.conj().T)
                    ct += upd

                rt.submit(TaskKind.HERK if i == j else TaskKind.GEMM,
                          reads=tuple(arefs), writes=(cref,), rank=rank,
                          flops=fl, tile_dim=c.nb, fn=body,
                          bytes_out=c.tile_nbytes(i, j),
                          label=f"herk({i},{j},{k})")


def mirror_lower(rt: Runtime, c: DistMatrix) -> None:
    """Copy the lower triangle onto the upper: C[j,i] = C[i,j]^H.

    Turns a herk-produced lower-triangular-valid matrix into an
    explicit Hermitian matrix (needed before full gemm consumers).
    """
    rt.begin_op()
    if c.m != c.n:
        raise ValueError("mirror_lower needs a square matrix")
    for i in range(c.mt):
        for j in range(i):
            src, dst = c.ref(i, j), c.ref(j, i)

            def body(i=i, j=j):
                c.tile(j, i)[...] = c.tile(i, j).conj().T

            rt.submit(TaskKind.COPY, reads=(src,), writes=(dst,),
                      rank=c.owner(j, i),
                      flops=float(c.tile_rows(i) * c.tile_cols(j)),
                      tile_dim=c.nb, fn=body,
                      bytes_out=c.tile_nbytes(j, i),
                      label=f"mirror({i},{j})")


def add(rt: Runtime, alpha: complex, a: DistMatrix, beta: complex,
        b: DistMatrix) -> None:
    """B = alpha A + beta B (slate::add), tile-wise."""
    rt.begin_op()
    if a.shape != b.shape:
        raise ValueError(f"add shape mismatch: {a.shape} vs {b.shape}")
    if a.nb != b.nb:
        raise ValueError("add requires matching tile sizes")
    for i in range(b.mt):
        for j in range(b.nt):
            fl = 3.0 * b.tile_rows(i) * b.tile_cols(j)

            def body(i=i, j=j):
                bt = b.tile(i, j)
                bt *= b.dtype.type(beta)
                bt += b.dtype.type(alpha) * a.tile(i, j)

            rt.submit(TaskKind.ADD, reads=(a.ref(i, j),),
                      writes=(b.ref(i, j),), rank=b.owner(i, j),
                      flops=fl, tile_dim=b.nb, fn=body,
                      bytes_out=b.tile_nbytes(i, j),
                      label=f"add({i},{j})")


def scale(rt: Runtime, alpha: complex, a: DistMatrix) -> None:
    """A = alpha * A."""
    rt.begin_op()
    for i in range(a.mt):
        for j in range(a.nt):
            fl = float(a.tile_rows(i) * a.tile_cols(j))

            def body(i=i, j=j):
                a.tile(i, j)[...] *= a.dtype.type(alpha)

            rt.submit(TaskKind.SCALE, reads=(), writes=(a.ref(i, j),),
                      rank=a.owner(i, j), flops=fl, tile_dim=a.nb,
                      fn=body, bytes_out=a.tile_nbytes(i, j),
                      label=f"scale({i},{j})")


def copy(rt: Runtime, src: DistMatrix, dst: DistMatrix, *,
         dst_row_offset: int = 0) -> None:
    """dst[tile rows offset...] = src, tile-wise.

    ``dst_row_offset`` is in *tiles* and lets Algorithm 1 build the
    stacked W = [W1; W2] workspaces (copy A into the top tiles,
    identity below).  Requires aligned tilings.
    """
    rt.begin_op()
    if src.n != dst.n or src.col_widths != dst.col_widths:
        raise ValueError("copy requires matching column tilings")
    if dst_row_offset < 0 or dst_row_offset + src.mt > dst.mt:
        raise ValueError("copy row offset out of range")
    for i in range(src.mt):
        if src.tile_rows(i) != dst.tile_rows(i + dst_row_offset):
            raise ValueError(
                f"row tiling mismatch at tile {i}: "
                f"{src.tile_rows(i)} vs {dst.tile_rows(i + dst_row_offset)}")
    for i in range(src.mt):
        for j in range(src.nt):
            di = i + dst_row_offset

            def body(i=i, j=j, di=di):
                dst.tile(di, j)[...] = src.tile(i, j)

            rt.submit(TaskKind.COPY, reads=(src.ref(i, j),),
                      writes=(dst.ref(di, j),), rank=dst.owner(di, j),
                      flops=float(src.tile_rows(i) * src.tile_cols(j)),
                      tile_dim=dst.nb, fn=body,
                      bytes_out=dst.tile_nbytes(di, j),
                      label=f"copy({i},{j})")


def set_zero(rt: Runtime, a: DistMatrix) -> None:
    """A = 0."""
    rt.begin_op()
    for i in range(a.mt):
        for j in range(a.nt):

            def body(i=i, j=j):
                a.tile(i, j)[...] = 0

            rt.submit(TaskKind.SET, reads=(), writes=(a.ref(i, j),),
                      rank=a.owner(i, j),
                      flops=float(a.tile_rows(i) * a.tile_cols(j)),
                      tile_dim=a.nb, fn=body,
                      bytes_out=a.tile_nbytes(i, j),
                      label=f"zero({i},{j})")


def set_identity(rt: Runtime, a: DistMatrix, *, row_offset: int = 0,
                 alpha: complex = 1.0) -> None:
    """Write alpha*I into A starting at tile-row ``row_offset``.

    The rest of the touched tiles is zeroed; used for the [sqrt(c)A; I]
    stack and the W2 = I workspace of Algorithm 1.
    """
    rt.begin_op()
    if row_offset < 0 or row_offset + a.nt > a.mt:
        raise ValueError("identity block does not fit")
    for j in range(a.nt):
        for i in range(a.nt):
            di = i + row_offset

            def body(i=i, j=j, di=di):
                t = a.tile(di, j)
                t[...] = 0
                if i == j:
                    d = min(t.shape)
                    t[np.arange(d), np.arange(d)] = a.dtype.type(alpha)

            rt.submit(TaskKind.SET, reads=(), writes=(a.ref(di, j),),
                      rank=a.owner(di, j),
                      flops=float(a.tile_rows(di) * a.tile_cols(j)),
                      tile_dim=a.nb, fn=body,
                      bytes_out=a.tile_nbytes(di, j),
                      label=f"eye({di},{j})")


def set_diag_add(rt: Runtime, a: DistMatrix, alpha: complex = 1.0) -> None:
    """A += alpha * I (diagonal tiles only)."""
    rt.begin_op()
    if a.m != a.n:
        raise ValueError("set_diag_add needs a square matrix")
    for k in range(a.nt):

        def body(k=k):
            t = a.tile(k, k)
            d = min(t.shape)
            t[np.arange(d), np.arange(d)] += a.dtype.type(alpha)

        rt.submit(TaskKind.SET, reads=(a.ref(k, k),),
                  writes=(a.ref(k, k),), rank=a.owner(k, k),
                  tile_dim=a.nb, fn=body,
                  bytes_out=a.tile_nbytes(k, k), label=f"diag+({k})")


def transpose_conj(rt: Runtime, a: DistMatrix,
                   out: Optional[DistMatrix] = None) -> DistMatrix:
    """Materialize A^H as a new tiled matrix (tile (j,i) = A(i,j)^H).

    SLATE represents transposes as views; QDWH's posv step needs the
    explicit n x m right-hand side A^H, which SLATE also materializes
    into a workspace.  The transpose moves every tile at most once.
    """
    rt.begin_op()
    if out is None:
        out = DistMatrix(rt, a.n, a.m, a.nb, a.dtype, name=f"{a.name}^H")
    if out.shape != (a.n, a.m) or out.nb != a.nb:
        raise ValueError("transpose output has wrong geometry")
    for i in range(a.mt):
        for j in range(a.nt):

            def body(i=i, j=j):
                out.tile(j, i)[...] = a.tile(i, j).conj().T

            rt.submit(TaskKind.COPY, reads=(a.ref(i, j),),
                      writes=(out.ref(j, i),), rank=out.owner(j, i),
                      flops=float(a.tile_rows(i) * a.tile_cols(j)),
                      tile_dim=a.nb, fn=body,
                      bytes_out=out.tile_nbytes(j, i),
                      label=f"trans({i},{j})")
    return out
