"""Tiled matrix norms and column sums.

Each norm is a two-level reduction: per-tile NORM tasks compute local
partials on the tile's owner (SLATE's ``internal::norm``), then a
REDUCE task combines them — the analogue of the MPI reduction.

Scalar results are wrapped in :class:`ScalarResult`: numeric runs see
the value immediately (eager execution); symbolic runs only get the
dependency ref.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dist.matrix import DistMatrix
from ..runtime.executor import Runtime
from ..runtime.task import TaskKind, TileRef


@dataclass
class ScalarResult:
    """A scalar produced by a tiled reduction.

    On a deferred (threaded-backend) runtime, reading :attr:`value` is
    a synchronization point: the pending task window — including the
    reduction that fills the box — is flushed first, so adaptive
    drivers (convergence loops, estimators) behave exactly as under
    eager execution.
    """

    ref: TileRef
    _box: List[Optional[float]]
    _rt: Optional[Runtime] = None

    @property
    def value(self) -> float:
        rt = self._rt
        if rt is not None:
            san = getattr(rt, "_sanitizer", None)
            if san is not None:
                # Reading a scalar inside a payload is a re-entrant
                # sync hazard (the inner sync is suppressed; the box
                # may not be filled yet).  No-op outside payloads.
                san.on_sync(self.ref, "ScalarResult.value")
        v = self._box[0]
        if v is None and rt is not None \
                and getattr(rt, "deferred", False):
            rt.sync()
            v = self._box[0]
        if v is None:
            raise RuntimeError("scalar not computed (symbolic mode?)")
        return float(v)


def _partial_refs(rt: Runtime, a: DistMatrix, nbytes) -> Dict[Tuple[int, int], TileRef]:
    mat = rt.new_matrix_id()
    refs = {}
    for i in range(a.mt):
        for j in range(a.nt):
            ref = (mat, i, j)
            rt.register_tiles([ref], nbytes(i, j))
            refs[(i, j)] = ref
    return refs


def _tile_reduce(rt: Runtime, a: DistMatrix, partial_fn, combine_fn,
                 partial_bytes, label: str) -> ScalarResult:
    """Generic partial-per-tile + single-combine scalar reduction."""
    parts: Dict[Tuple[int, int], object] = {}
    refs = _partial_refs(rt, a, partial_bytes)
    for i in range(a.mt):
        for j in range(a.nt):

            def body(i=i, j=j):
                parts[(i, j)] = partial_fn(a.tile(i, j))

            fl = 2.0 * a.tile_rows(i) * a.tile_cols(j)
            rt.submit(TaskKind.NORM, reads=(a.ref(i, j),),
                      writes=(refs[(i, j)],), rank=a.owner(i, j),
                      flops=fl, tile_dim=a.nb, fn=body,
                      bytes_out=partial_bytes(i, j),
                      label=f"{label}.part({i},{j})")
    box: List[Optional[float]] = [None]
    out = rt.new_scalar_ref()

    def reduce_body():
        box[0] = combine_fn(parts)

    rt.submit(TaskKind.REDUCE, reads=tuple(refs.values()),
              writes=(out,), rank=0, flops=float(len(refs)),
              fn=reduce_body, bytes_out=8, label=f"{label}.reduce")
    return ScalarResult(ref=out, _box=box, _rt=rt)


def norm_one(rt: Runtime, a: DistMatrix) -> ScalarResult:
    """||A||_1 = max column absolute sum."""
    rt.begin_op()
    def combine(parts):
        cols: Dict[int, np.ndarray] = {}
        for (_i, j), v in parts.items():
            cols[j] = v if j not in cols else cols[j] + v
        return max((float(np.max(c)) for c in cols.values()), default=0.0)

    return _tile_reduce(
        rt, a,
        partial_fn=lambda t: np.sum(np.abs(t), axis=0),
        combine_fn=combine,
        partial_bytes=lambda i, j: a.tile_cols(j) * 8,
        label="norm1")


def norm_inf(rt: Runtime, a: DistMatrix) -> ScalarResult:
    """||A||_inf = max row absolute sum."""
    rt.begin_op()
    def combine(parts):
        rows: Dict[int, np.ndarray] = {}
        for (i, _j), v in parts.items():
            rows[i] = v if i not in rows else rows[i] + v
        return max((float(np.max(r)) for r in rows.values()), default=0.0)

    return _tile_reduce(
        rt, a,
        partial_fn=lambda t: np.sum(np.abs(t), axis=1),
        combine_fn=combine,
        partial_bytes=lambda i, j: a.tile_rows(i) * 8,
        label="norminf")


def norm_fro(rt: Runtime, a: DistMatrix) -> ScalarResult:
    """||A||_F (partials are sums of squares — exact combination)."""
    rt.begin_op()
    return _tile_reduce(
        rt, a,
        partial_fn=lambda t: float(np.sum(np.abs(t) ** 2)),
        combine_fn=lambda parts: float(np.sqrt(sum(parts.values()))),
        partial_bytes=lambda i, j: 8,
        label="normf")


def norm_max(rt: Runtime, a: DistMatrix) -> ScalarResult:
    """max |a_ij|."""
    rt.begin_op()
    return _tile_reduce(
        rt, a,
        partial_fn=lambda t: float(np.max(np.abs(t))) if t.size else 0.0,
        combine_fn=lambda parts: max((float(v) for v in parts.values()),
                                     default=0.0),
        partial_bytes=lambda i, j: 8,
        label="normmax")


def column_abs_sums(rt: Runtime, a: DistMatrix, x: DistMatrix) -> None:
    """x[j-block] = sum_i |A tile(i,j)| column sums (Algorithm 2, l.6-8).

    ``x`` must be an n x 1 vector whose row tiling equals A's column
    tiling.  Per-tile partials are reduced onto each x tile's owner —
    the MPI_Allreduce of the paper's pseudo-code.
    """
    rt.begin_op()
    if x.shape != (a.n, 1) or x.row_heights != a.col_widths:
        raise ValueError("x must be n x 1 with A's column tiling")
    mat = rt.new_matrix_id()
    parts: Dict[Tuple[int, int], np.ndarray] = {}
    for j in range(a.nt):
        refs = []
        for i in range(a.mt):
            ref = (mat, i, j)
            rt.register_tiles([ref], a.tile_cols(j) * 8)
            refs.append(ref)

            def body(i=i, j=j):
                parts[(i, j)] = np.sum(np.abs(a.tile(i, j)), axis=0)

            rt.submit(TaskKind.NORM, reads=(a.ref(i, j),), writes=(ref,),
                      rank=a.owner(i, j),
                      flops=2.0 * a.tile_rows(i) * a.tile_cols(j),
                      tile_dim=a.nb, fn=body,
                      bytes_out=a.tile_cols(j) * 8,
                      label=f"colsum({i},{j})")

        def reduce_body(j=j):
            acc = parts[(0, j)].copy()
            for i in range(1, a.mt):
                acc += parts[(i, j)]
            x.tile(j, 0)[...] = acc.astype(x.dtype)[:, None]

        rt.submit(TaskKind.REDUCE, reads=tuple(refs),
                  writes=(x.ref(j, 0),), rank=x.owner(j, 0),
                  flops=float(a.mt * a.tile_cols(j)), fn=reduce_body,
                  bytes_out=x.tile_nbytes(j, 0),
                  label=f"colsum.red({j})")
