"""Tiled Householder QR factorization and Q application.

The PLASMA/SLATE tile-QR algorithm: at panel step k,

* ``geqrt`` factors the diagonal tile,
* ``unmqr`` applies its reflectors across tile-row k,
* ``tpqrt`` couples each below-panel tile with the R block,
* ``tpmqrt`` applies each coupling across the trailing tile rows.

The factored matrix keeps R in its upper tiles and the panel
reflectors below; T factors (and the generic V_top blocks of the
couple kernels) live in a side buffer with their own dependency refs.

``qr_explicit`` forms the economy Q = Q_full[:, :n] by applying the
reflectors to an [I; 0] workspace in reverse order — exactly how
Algorithm 1 materializes [Q1; Q2] (its ``unmqr`` call, line 32).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from .. import flops as F
from ..dist.matrix import DistMatrix
from ..runtime.executor import Runtime
from ..runtime.task import TaskKind, TileRef
from . import kernels


@dataclass
class QRFactors:
    """A tiled QR factorization in compact form.

    ``panel`` records which reduction built it:

    * flat — ``aux[(k,k)]`` is the geqrt T; ``aux[(i,k)]`` (i > k) is
      the TS couple's ``(V_top, T)`` with V_bot stored in tile (i,k).
    * tree — ``aux[(i,k)]`` is the geqrt T of *every* block row i;
      ``aux[("tt", i2, k)]`` is the triangle-combine ``(V_top, V_bot,
      T, rows_eff)`` whose bottom operand was row i2.
    """

    a: DistMatrix                 # R upper + panel reflectors lower
    kt: int                       # number of panel steps
    aux_mat: int                  # pseudo-matrix id for geqrt T refs
    tt_mat: int = -1              # pseudo-matrix id for tree-combine refs
    panel: str = "tree"
    aux: Dict[object, object] = field(default_factory=dict)

    def t_ref(self, i: int, k: int) -> TileRef:
        return (self.aux_mat, i, k)

    def tt_ref(self, i2: int, k: int) -> TileRef:
        return (self.tt_mat, i2, k)


def _tree_rounds(heights, kb: int):
    """TSQR binary-combine rounds over a panel's block rows.

    ``heights[rel]`` is the tile height of relative row ``rel``; the R
    trapezoid a row can hold has ``min(height, kb)`` rows.  Rounds pair
    the tallest surviving row with the shortest (so a short ragged tile
    is always absorbed by one that can hold the combined triangle), and
    relative row 0 — the diagonal tile, whose height is >= kb by the
    m >= n invariant — is pinned first so the final R lands there.

    Returns a list of rounds; each round is a list of ``(top_rel,
    bot_rel, bot_cap)`` with disjoint operands (concurrent tasks), where
    ``bot_cap`` is the number of R rows the bottom operand contributes.
    """
    caps = {rel: min(h, kb) for rel, h in enumerate(heights)}
    survivors = sorted(caps)
    rounds = []
    while len(survivors) > 1:
        pairs = []
        nxt = []
        progress = False
        i = 0
        while i + 1 < len(survivors):
            lo, hi = survivors[i], survivors[i + 1]
            need = min(caps[lo] + caps[hi], kb)
            if min(heights[lo], kb) >= need:
                top, bot = lo, hi          # neighbor pairing, low on top
            elif min(heights[hi], kb) >= need:
                top, bot = hi, lo          # ragged low tile: swap roles
            else:
                nxt.append(lo)             # both short: defer lo, retry
                i += 1
                continue
            pairs.append((top, bot, caps[bot]))
            caps[top] = need
            nxt.append(top)
            progress = True
            i += 2
        if i < len(survivors):
            nxt.append(survivors[i])
        if not progress:
            raise ValueError(
                "panel tiling too ragged for the tree reduction: no "
                "surviving row can hold a combined triangle")
        rounds.append(pairs)
        survivors = sorted(nxt)
    if survivors != [0]:  # pragma: no cover - structural invariant
        raise AssertionError("tree reduction did not terminate at row 0")
    return rounds


def geqrf(rt: Runtime, a: DistMatrix, *, panel: str = "tree") -> QRFactors:
    """Factor A = QR in place; returns the factors.

    ``panel`` selects the panel reduction:

    * ``"tree"`` (default) — communication-avoiding TSQR: every block
      row is geqrt-factored independently, then triangles combine in a
      binary tree (depth log2 of the panel height).  This is SLATE's
      CAQR-style internal geqrf.
    * ``"flat"`` — PLASMA-style sequential TS chain (depth = panel
      height); kept as the ablation baseline.
    """
    if panel == "tree":
        return _geqrf_tree(rt, a)
    if panel != "flat":
        raise ValueError(f"panel must be 'tree' or 'flat', got {panel!r}")
    return _geqrf_flat(rt, a)


def _geqrf_flat(rt: Runtime, a: DistMatrix) -> QRFactors:
    if a.m < a.n:
        raise ValueError(f"tiled geqrf requires m >= n, got {a.m}x{a.n}")
    kt = min(a.mt, a.nt)
    fac = QRFactors(a=a, kt=kt, aux_mat=rt.new_matrix_id())
    fac.panel = "flat"
    aux = fac.aux
    # Processes backend: aux entries (T factors, V blocks) are driver
    # dict state written inside payloads; declaring the store lets the
    # scheduler ship them between workers by their pseudo-tile refs.
    rt.register_side_store(fac.aux_mat, aux, lambda ref: (ref[1], ref[2]))
    itemsize = a.dtype.itemsize
    for k in range(kt):
        rt.advance_phase()
        kb = a.tile_cols(k)
        mb = a.tile_rows(k)
        tkk = fac.t_ref(k, k)
        rt.register_tiles([tkk], kb * kb * itemsize)

        def panel(k=k):
            tile, t = kernels.geqrt_kernel(a.tile(k, k))
            a.set_tile(k, k, tile)
            aux[(k, k)] = t

        rt.submit(TaskKind.GEQRT, reads=(a.ref(k, k),),
                  writes=(a.ref(k, k), tkk), rank=a.owner(k, k),
                  flops=F.tile_geqrt(mb, kb), tile_dim=a.nb, fn=panel,
                  bytes_out=a.tile_nbytes(k, k) + kb * kb * itemsize,
                  label=f"geqrt({k})")

        for j in range(k + 1, a.nt):

            def row_apply(k=k, j=j):
                c = kernels.apply_q_kernel(a.tile(k, k), aux[(k, k)],
                                           a.tile(k, j), conj_trans=True)
                a.tile(k, j)[...] = c

            rt.submit(TaskKind.UNMQR, reads=(a.ref(k, k), tkk),
                      writes=(a.ref(k, j),), rank=a.owner(k, j),
                      flops=F.tile_unmqr(mb, a.tile_cols(j), kb),
                      tile_dim=a.nb, fn=row_apply,
                      bytes_out=a.tile_nbytes(k, j),
                      label=f"unmqr({k},{j})")

        for i in range(k + 1, a.mt):
            tik = fac.t_ref(i, k)
            mbi = a.tile_rows(i)
            rt.register_tiles([tik], 2 * kb * kb * itemsize)

            def couple(k=k, i=i, kb=kb):
                r_new, v_top, v_bot, t = kernels.tpqrt_kernel(
                    a.tile(k, k)[:kb, :kb], a.tile(i, k))
                dkk = a.tile(k, k)
                dkk[:kb, :kb] = np.tril(dkk[:kb, :kb], -1) + r_new
                a.tile(i, k)[...] = v_bot
                aux[(i, k)] = (v_top, t)

            rt.submit(TaskKind.TPQRT,
                      reads=(a.ref(k, k), a.ref(i, k)),
                      writes=(a.ref(k, k), a.ref(i, k), tik),
                      rank=a.owner(i, k),
                      flops=F.tile_tpqrt(mbi, kb), tile_dim=a.nb,
                      fn=couple,
                      bytes_out=(a.tile_nbytes(k, k) + a.tile_nbytes(i, k)
                                 + 2 * kb * kb * itemsize),
                      label=f"tpqrt({i},{k})")

            for j in range(k + 1, a.nt):

                def pair_apply(k=k, i=i, j=j, kb=kb):
                    v_top, t = aux[(i, k)]
                    top = a.tile(k, j)
                    new_top, new_bot = kernels.tpmqrt_kernel(
                        v_top, a.tile(i, k), t, top[:kb], a.tile(i, j),
                        conj_trans=True)
                    top[:kb] = new_top
                    a.tile(i, j)[...] = new_bot

                rt.submit(TaskKind.TPMQRT,
                          reads=(a.ref(i, k), tik),
                          writes=(a.ref(k, j), a.ref(i, j)),
                          rank=a.owner(i, j),
                          flops=F.tile_tpmqrt(mbi, a.tile_cols(j), kb),
                          tile_dim=a.nb, fn=pair_apply,
                          bytes_out=(a.tile_nbytes(k, j)
                                     + a.tile_nbytes(i, j)),
                          label=f"tpmqrt({i},{j},{k})")
    return fac


def _geqrf_tree(rt: Runtime, a: DistMatrix) -> QRFactors:
    """Communication-avoiding TSQR panels (binary triangle combines)."""
    rt.begin_op()
    rt.begin_op()
    if a.m < a.n:
        raise ValueError(f"tiled geqrf requires m >= n, got {a.m}x{a.n}")
    kt = min(a.mt, a.nt)
    fac = QRFactors(a=a, kt=kt, aux_mat=rt.new_matrix_id(),
                    tt_mat=rt.new_matrix_id(), panel="tree")
    aux = fac.aux
    # Both pseudo-matrix ids resolve into the same aux dict; the tree
    # combine entries are keyed ("tt", i2, k) (see QRFactors docstring).
    rt.register_side_store(fac.aux_mat, aux, lambda ref: (ref[1], ref[2]))
    rt.register_side_store(fac.tt_mat, aux,
                           lambda ref: ("tt", ref[1], ref[2]))
    itemsize = a.dtype.itemsize
    for k in range(kt):
        rt.advance_phase()
        kb = a.tile_cols(k)
        length = a.mt - k

        # 1. Independent geqrt of every block row of the panel, plus the
        #    row-local trailing update (all rows run concurrently).
        for i in range(k, a.mt):
            mbi = a.tile_rows(i)
            tik = fac.t_ref(i, k)
            rt.register_tiles([tik], kb * kb * itemsize)

            def rowfac(i=i, k=k):
                tile, t = kernels.geqrt_kernel(a.tile(i, k))
                a.set_tile(i, k, tile)
                aux[(i, k)] = t

            rt.submit(TaskKind.GEQRT, reads=(a.ref(i, k),),
                      writes=(a.ref(i, k), tik), rank=a.owner(i, k),
                      flops=F.tile_geqrt(mbi, kb), tile_dim=a.nb,
                      fn=rowfac,
                      bytes_out=a.tile_nbytes(i, k) + kb * kb * itemsize,
                      label=f"ts.geqrt({i},{k})")

            for j in range(k + 1, a.nt):

                def rowupd(i=i, j=j, k=k):
                    c = kernels.apply_q_kernel(
                        a.tile(i, k), aux[(i, k)], a.tile(i, j),
                        conj_trans=True)
                    a.tile(i, j)[...] = c

                rt.submit(TaskKind.UNMQR, reads=(a.ref(i, k), tik),
                          writes=(a.ref(i, j),), rank=a.owner(i, j),
                          flops=F.tile_unmqr(mbi, a.tile_cols(j), kb),
                          tile_dim=a.nb, fn=rowupd,
                          bytes_out=a.tile_nbytes(i, j),
                          label=f"ts.unmqr({i},{j})")

        # 2. Binary combine rounds (log2 depth).
        heights = [a.tile_rows(i) for i in range(k, a.mt)]
        for round_pairs in _tree_rounds(heights, kb):
            for p1, p2, rows_eff in round_pairs:
                i1, i2 = k + p1, k + p2
                ttref = fac.tt_ref(i2, k)
                rt.register_tiles([ttref],
                                  (kb * kb + rows_eff * kb) * itemsize)

                def combine(i1=i1, i2=i2, k=k, kb=kb, rows_eff=rows_eff):
                    top = a.tile(i1, k)
                    bot_r = np.triu(a.tile(i2, k)[:rows_eff])
                    r_new, v_top, v_bot, t = kernels.tpqrt_kernel(
                        top[:kb, :kb], bot_r)
                    top[:kb, :kb] = np.tril(top[:kb, :kb], -1) + r_new
                    aux[("tt", i2, k)] = (v_top, v_bot, t, rows_eff)

                rt.submit(TaskKind.TPQRT,
                          reads=(a.ref(i1, k), a.ref(i2, k)),
                          writes=(a.ref(i1, k), ttref),
                          rank=a.owner(i1, k),
                          flops=F.tile_ttqrt(kb), tile_dim=a.nb,
                          fn=combine,
                          bytes_out=(a.tile_nbytes(i1, k)
                                     + (kb * kb + rows_eff * kb)
                                     * itemsize),
                          label=f"ttqrt({i1},{i2},{k})")

                for j in range(k + 1, a.nt):

                    def pairupd(i1=i1, i2=i2, j=j, k=k, kb=kb):
                        v_top, v_bot, t, rows_eff = aux[("tt", i2, k)]
                        ct = a.tile(i1, j)
                        cb = a.tile(i2, j)
                        new_t, new_b = kernels.tpmqrt_kernel(
                            v_top, v_bot, t, ct[:kb], cb[:rows_eff],
                            conj_trans=True)
                        ct[:kb] = new_t
                        cb[:rows_eff] = new_b

                    rt.submit(TaskKind.TPMQRT,
                              reads=(ttref,),
                              writes=(a.ref(i1, j), a.ref(i2, j)),
                              rank=a.owner(i1, j),
                              flops=F.tile_ttmqrt(kb, a.tile_cols(j)),
                              tile_dim=a.nb, fn=pairupd,
                              bytes_out=(a.tile_nbytes(i1, j)
                                         + a.tile_nbytes(i2, j)),
                              label=f"ttmqrt({i1},{i2},{j})")
    return fac


def _set_econ_identity(rt: Runtime, q: DistMatrix) -> None:
    """Q workspace <- [I_n; 0] (tile-aligned: heights[k] == widths[k])."""
    for i in range(q.mt):
        for j in range(q.nt):

            def body(i=i, j=j):
                t = q.tile(i, j)
                t[...] = 0
                if i == j:
                    d = min(t.shape)
                    t[np.arange(d), np.arange(d)] = 1

            rt.submit(TaskKind.SET, reads=(), writes=(q.ref(i, j),),
                      rank=q.owner(i, j),
                      flops=float(q.tile_rows(i) * q.tile_cols(j)),
                      tile_dim=q.nb, fn=body,
                      bytes_out=q.tile_nbytes(i, j),
                      label=f"qeye({i},{j})")


def unmqr_identity(rt: Runtime, fac: QRFactors) -> DistMatrix:
    """Materialize the economy Q (m x n) of a factorization.

    Applies the panel reflectors to [I; 0], rightmost factor first
    (reverse of the factorization order).
    """
    rt.begin_op()
    a = fac.a
    q = DistMatrix(rt, a.m, a.n, a.nb, a.dtype, layout=a.layout,
                   name="Q", row_heights=a.row_heights,
                   col_widths=a.col_widths)
    _set_econ_identity(rt, q)
    if fac.panel == "tree":
        _apply_q_tree(rt, fac, q)
        return q
    for k in reversed(range(fac.kt)):
        rt.advance_phase()
        kb = a.tile_cols(k)
        mb = a.tile_rows(k)
        tkk = fac.t_ref(k, k)
        for i in reversed(range(k + 1, a.mt)):
            tik = fac.t_ref(i, k)
            mbi = a.tile_rows(i)
            for j in range(q.nt):

                def pair_apply(k=k, i=i, j=j, kb=kb):
                    v_top, t = fac.aux[(i, k)]
                    top = q.tile(k, j)
                    new_top, new_bot = kernels.tpmqrt_kernel(
                        v_top, a.tile(i, k), t, top[:kb], q.tile(i, j),
                        conj_trans=False)
                    top[:kb] = new_top
                    q.tile(i, j)[...] = new_bot

                rt.submit(TaskKind.TPMQRT,
                          reads=(a.ref(i, k), tik),
                          writes=(q.ref(k, j), q.ref(i, j)),
                          rank=q.owner(i, j),
                          flops=F.tile_tpmqrt(mbi, q.tile_cols(j), kb),
                          tile_dim=q.nb, fn=pair_apply,
                          bytes_out=(q.tile_nbytes(k, j)
                                     + q.tile_nbytes(i, j)),
                          label=f"q.tpmqrt({i},{j},{k})")
        for j in range(q.nt):

            def head_apply(k=k, j=j):
                c = kernels.apply_q_kernel(a.tile(k, k), fac.aux[(k, k)],
                                           q.tile(k, j), conj_trans=False)
                q.tile(k, j)[...] = c

            rt.submit(TaskKind.UNMQR, reads=(a.ref(k, k), tkk),
                      writes=(q.ref(k, j),), rank=q.owner(k, j),
                      flops=F.tile_unmqr(mb, q.tile_cols(j), kb),
                      tile_dim=q.nb, fn=head_apply,
                      bytes_out=q.tile_nbytes(k, j),
                      label=f"q.unmqr({k},{j})")
    return q


def _apply_q_tree(rt: Runtime, fac: QRFactors, q: DistMatrix) -> None:
    """Apply a tree-panel Q to the [I; 0] workspace (reverse order)."""
    a = fac.a
    for k in reversed(range(fac.kt)):
        rt.advance_phase()
        kb = a.tile_cols(k)
        heights = [a.tile_rows(i) for i in range(k, a.mt)]
        rounds = _tree_rounds(heights, kb)
        for round_pairs in reversed(rounds):
            for p1, p2, _cap in round_pairs:
                i1, i2 = k + p1, k + p2
                ttref = fac.tt_ref(i2, k)
                for j in range(q.nt):

                    def pairupd(i1=i1, i2=i2, j=j, k=k, kb=kb):
                        v_top, v_bot, t, rows_eff = fac.aux[("tt", i2, k)]
                        ct = q.tile(i1, j)
                        cb = q.tile(i2, j)
                        new_t, new_b = kernels.tpmqrt_kernel(
                            v_top, v_bot, t, ct[:kb], cb[:rows_eff],
                            conj_trans=False)
                        ct[:kb] = new_t
                        cb[:rows_eff] = new_b

                    rt.submit(TaskKind.TPMQRT, reads=(ttref,),
                              writes=(q.ref(i1, j), q.ref(i2, j)),
                              rank=q.owner(i1, j),
                              flops=F.tile_ttmqrt(kb, q.tile_cols(j)),
                              tile_dim=q.nb, fn=pairupd,
                              bytes_out=(q.tile_nbytes(i1, j)
                                         + q.tile_nbytes(i2, j)),
                              label=f"q.ttmqrt({i1},{i2},{j})")
        for i in range(k, a.mt):
            tik = fac.t_ref(i, k)
            mbi = a.tile_rows(i)
            for j in range(q.nt):

                def rowapply(i=i, j=j, k=k):
                    c = kernels.apply_q_kernel(
                        a.tile(i, k), fac.aux[(i, k)], q.tile(i, j),
                        conj_trans=False)
                    q.tile(i, j)[...] = c

                rt.submit(TaskKind.UNMQR, reads=(a.ref(i, k), tik),
                          writes=(q.ref(i, j),), rank=q.owner(i, j),
                          flops=F.tile_unmqr(mbi, q.tile_cols(j), kb),
                          tile_dim=q.nb, fn=rowapply,
                          bytes_out=q.tile_nbytes(i, j),
                          label=f"q.ts.unmqr({i},{j})")


def qr_explicit(rt: Runtime, a: DistMatrix, *,
                panel: str = "tree") -> Tuple[QRFactors, DistMatrix]:
    """Factor A (in place) and return (factors, explicit economy Q)."""
    fac = geqrf(rt, a, panel=panel)
    q = unmqr_identity(rt, fac)
    return fac, q
