"""gemmA: the paper's communication-optimized matrix-vector product.

Section 6.2: "To carry out the matrix-vector multiplication involved
in norm2est, we develop gemmA, a variant of gemm that optimizes the
data movements when the A matrix is large relative to C.  Tiles of B
are sent to where the tiles of A reside to compute partial results,
then the final result is computed by a parallel reduction to where the
output C tiles reside."

:func:`gemm_a` implements exactly that placement.  :func:`gemv_owner_c`
is the naive owner-of-C placement (A tiles move — O(n^2) bytes instead
of O(n)); the A3 ablation benchmark compares the two.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .. import flops as F
from ..dist.matrix import DistMatrix
from ..runtime.executor import Runtime
from ..runtime.task import TaskKind


def _check_vec(a: DistMatrix, x: DistMatrix, y: DistMatrix,
               conj_a: bool) -> None:
    in_tiling = a.col_widths if not conj_a else a.row_heights
    out_tiling = a.row_heights if not conj_a else a.col_widths
    n_in = a.n if not conj_a else a.m
    n_out = a.m if not conj_a else a.n
    if x.shape != (n_in, 1) or x.row_heights != in_tiling:
        raise ValueError(f"x must be {n_in} x 1 with matching tiling")
    if y.shape != (n_out, 1) or y.row_heights != out_tiling:
        raise ValueError(f"y must be {n_out} x 1 with matching tiling")


def gemm_a(rt: Runtime, a: DistMatrix, x: DistMatrix, y: DistMatrix, *,
           conj_a: bool = False) -> None:
    """y = op(A) @ x with partials computed where A's tiles live.

    Only the small x tiles travel to A's owners; per-row partials are
    then reduced onto y's owners.
    """
    rt.begin_op()
    _check_vec(a, x, y, conj_a)
    mat = rt.new_matrix_id()
    parts: Dict[Tuple[int, int], np.ndarray] = {}
    out_t = a.mt if not conj_a else a.nt
    in_t = a.nt if not conj_a else a.mt
    for oi in range(out_t):
        refs = []
        rows = a.tile_rows(oi) if not conj_a else a.tile_cols(oi)
        for ki in range(in_t):
            i, j = (oi, ki) if not conj_a else (ki, oi)
            ref = (mat, oi, ki)
            rt.register_tiles([ref], rows * a.dtype.itemsize)
            refs.append(ref)
            kb = a.tile_cols(j) if not conj_a else a.tile_rows(i)

            def body(i=i, j=j, oi=oi, ki=ki):
                t = a.tile(i, j)
                xv = x.tile(ki, 0)
                parts[(oi, ki)] = (t @ xv if not conj_a
                                   else t.conj().T @ xv)

            rt.submit(TaskKind.GEMV, reads=(a.ref(i, j), x.ref(ki, 0)),
                      writes=(ref,), rank=a.owner(i, j),
                      flops=F.gemm(rows, 1, kb), tile_dim=a.nb,
                      fn=body, bytes_out=rows * a.dtype.itemsize,
                      label=f"gemmA({i},{j})")

        def reduce_body(oi=oi, n_in=in_t):
            acc = parts[(oi, 0)].copy()
            for ki in range(1, n_in):
                acc += parts[(oi, ki)]
            y.tile(oi, 0)[...] = acc

        rt.submit(TaskKind.REDUCE, reads=tuple(refs),
                  writes=(y.ref(oi, 0),), rank=y.owner(oi, 0),
                  flops=float(in_t * rows), fn=reduce_body,
                  bytes_out=y.tile_nbytes(oi, 0),
                  label=f"gemmA.red({oi})")


def gemv_owner_c(rt: Runtime, a: DistMatrix, x: DistMatrix,
                 y: DistMatrix, *, conj_a: bool = False) -> None:
    """y = op(A) @ x computed entirely at y's owners (naive placement).

    Every A tile crosses the network to the owner of its output tile —
    the data movement gemmA exists to avoid.  Numerically identical.
    """
    rt.begin_op()
    _check_vec(a, x, y, conj_a)
    out_t = a.mt if not conj_a else a.nt
    in_t = a.nt if not conj_a else a.mt
    for oi in range(out_t):
        rows = a.tile_rows(oi) if not conj_a else a.tile_cols(oi)
        rank = y.owner(oi, 0)
        for ki in range(in_t):
            i, j = (oi, ki) if not conj_a else (ki, oi)
            kb = a.tile_cols(j) if not conj_a else a.tile_rows(i)

            def body(i=i, j=j, oi=oi, ki=ki, first=(ki == 0)):
                t = a.tile(i, j)
                xv = x.tile(ki, 0)
                upd = t @ xv if not conj_a else t.conj().T @ xv
                yt = y.tile(oi, 0)
                if first:
                    yt[...] = 0
                yt += upd

            rt.submit(TaskKind.GEMV,
                      reads=(a.ref(i, j), x.ref(ki, 0)),
                      writes=(y.ref(oi, 0),), rank=rank,
                      flops=F.gemm(rows, 1, kb), tile_dim=a.nb,
                      fn=body, bytes_out=y.tile_nbytes(oi, 0),
                      label=f"gemvC({i},{j})")
