"""Tiled (PLASMA/SLATE-style) dense linear algebra on DistMatrix.

Every public function takes the :class:`repro.runtime.Runtime` first,
submits tile-granular tasks (recording the DAG), and computes real
numbers when the runtime is numeric.

Contents:

* :mod:`.kernels` — numeric single-tile kernels (geqrt, tpqrt, blocked
  reflector application, potrf, ...).
* :mod:`.blas3` — tiled gemm / herk / trsm / add / scale / copy / set.
* :mod:`.qr` — tiled Householder QR (flat or TS-tree panels), explicit
  Q formation, Q application.
* :mod:`.cholesky` — tiled potrf and posv.
* :mod:`.norms` — one/inf/fro/max norms and column sums.
* :mod:`.estimators` — norm2est (Algorithm 2), tiled Hager trcondest.
* :mod:`.gemm_a` — the paper's gemmA matrix-vector variant.
"""

from .blas3 import (
    add,
    copy,
    gemm,
    herk,
    scale,
    set_diag_add,
    set_identity,
    set_zero,
    transpose_conj,
)
from .qr import QRFactors, geqrf, unmqr_identity, qr_explicit
from .cholesky import posv, potrf, trsm_lower
from .norms import norm_fro, norm_inf, norm_max, norm_one, column_abs_sums
from .estimators import norm2est_tiled, trcondest_tiled
from .gemm_a import gemm_a, gemv_owner_c
from .lu import LUFactors, gecondest_tiled, getrf, getrs_vec

__all__ = [
    "add", "copy", "gemm", "herk", "scale", "set_diag_add",
    "set_identity", "set_zero", "transpose_conj",
    "QRFactors", "geqrf", "unmqr_identity", "qr_explicit",
    "posv", "potrf", "trsm_lower",
    "norm_fro", "norm_inf", "norm_max", "norm_one", "column_abs_sums",
    "norm2est_tiled", "trcondest_tiled",
    "gemm_a", "gemv_owner_c",
    "LUFactors", "getrf", "getrs_vec", "gecondest_tiled",
]
