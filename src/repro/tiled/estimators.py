"""Tiled norm and condition estimators (Sections 6.2 and 6.3).

* :func:`norm2est_tiled` — Algorithm 2 verbatim on the tiled substrate:
  column-sum start vector, gemmA matrix-vector sweeps, Frobenius-ratio
  estimate, tol = 0.1.
* :func:`trcondest_tiled` — Hager's 1-norm estimator (shared reverse-
  communication core from :mod:`repro.core.estimators`) driven by tiled
  triangular solves against the R factor of a tiled QR.

Both work in symbolic mode with a fixed sweep count (`sweeps=`), since
convergence tests need data; the numeric mode iterates adaptively like
the real library.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import NORM2EST_MAX_ITER, NORM2EST_TOL
from ..core.estimators import SOLVE, one_norm_estimator
from ..dist.matrix import DistMatrix
from ..runtime.executor import Runtime
from ..runtime.task import TaskKind
from .. import flops as F
from .gemm_a import gemm_a, gemv_owner_c
from .norms import ScalarResult, column_abs_sums, norm_fro
from .qr import QRFactors

#: Fixed sweep count used when the runtime is symbolic (the measured
#: numeric runs converge in 3-5 sweeps at tol=0.1).
DEFAULT_SYMBOLIC_SWEEPS = 4
DEFAULT_SYMBOLIC_HAGER_CYCLES = 2


def _vector(rt: Runtime, a: DistMatrix, *, of_cols: bool) -> DistMatrix:
    """A work vector tiled to match A's columns (True) or rows."""
    tiling = a.col_widths if of_cols else a.row_heights
    n = a.n if of_cols else a.m
    return DistMatrix(rt, n, 1, a.nb, a.dtype, layout=a.layout,
                      row_heights=tiling, col_widths=(1,),
                      name="vec")


def _vec_scale(rt: Runtime, alpha_box: List[float], x: DistMatrix) -> None:
    """x *= alpha (alpha known at run time through a box)."""
    for i in range(x.mt):

        def body(i=i):
            x.tile(i, 0)[...] *= x.dtype.type(alpha_box[0])

        rt.submit(TaskKind.SCALE, reads=(x.ref(i, 0),),
                  writes=(x.ref(i, 0),), rank=x.owner(i, 0),
                  flops=float(x.tile_rows(i)), fn=body,
                  bytes_out=x.tile_nbytes(i, 0), label=f"vscale({i})")


def norm2est_tiled(rt: Runtime, a: DistMatrix, *,
                   tol: float = NORM2EST_TOL,
                   sweeps: Optional[int] = None,
                   use_gemm_a: bool = True) -> ScalarResult:
    """Estimate ||A||_2 by power iteration (Algorithm 2).

    ``sweeps``: fixed sweep count (required in symbolic mode; optional
    cap in numeric mode).  ``use_gemm_a=False`` switches the internal
    products to the naive owner-of-C placement for the A3 ablation.
    """
    if not rt.numeric and sweeps is None:
        sweeps = DEFAULT_SYMBOLIC_SWEEPS
    mv = gemm_a if use_gemm_a else gemv_owner_c
    x = _vector(rt, a, of_cols=True)
    ax = _vector(rt, a, of_cols=False)
    # Lines 5-8: start from global column sums.
    rt.advance_phase()
    column_abs_sums(rt, a, x)
    e_res = norm_fro(rt, x)

    if rt.numeric:
        e = e_res.value
        if e == 0.0:
            return e_res
        norm_x = e
        e0 = 0.0
        it = 0
        max_it = sweeps if sweeps is not None else NORM2EST_MAX_ITER
        box = [0.0]
        nx = e_res
        while abs(e - e0) > tol * e and it < max_it:
            e0 = e
            rt.advance_phase()
            box[0] = 1.0 / norm_x
            _vec_scale(rt, box, x)
            mv(rt, a, x, ax)                      # AX = A @ X
            mv(rt, a, ax, x, conj_a=True)         # X  = A^H @ AX
            nx = norm_fro(rt, x)
            nax = norm_fro(rt, ax)
            norm_x = nx.value
            if nax.value == 0.0:
                break
            e = norm_x / nax.value
            it += 1
        out = rt.new_scalar_ref()
        final: List[Optional[float]] = [e]
        rt.submit(TaskKind.REDUCE, reads=(nx.ref,),
                  writes=(out,), rank=0, bytes_out=8,
                  label="norm2est.final")
        return ScalarResult(ref=out, _box=final, _rt=rt)

    # Symbolic: emit the fixed-sweep graph.
    box = [1.0]
    last = e_res
    for _ in range(sweeps):
        rt.advance_phase()
        _vec_scale(rt, box, x)
        mv(rt, a, x, ax)
        mv(rt, a, ax, x, conj_a=True)
        last = norm_fro(rt, x)
        norm_fro(rt, ax)
    return last


# ---------------------------------------------------------------------------
# Tiled triangular solves against the R factor (for trcondest)
# ---------------------------------------------------------------------------

def _r_block(fac: QRFactors, k: int, j: int) -> np.ndarray:
    """R(k, j) block from the factored matrix (valid rows only)."""
    a = fac.a
    kb = a.tile_cols(k)
    t = a.tile(k, j)[:kb]
    if j == k:
        return np.triu(t[:, :kb])
    return t


def trsv_upper(rt: Runtime, fac: QRFactors, b: DistMatrix, *,
               conj_trans: bool) -> None:
    """Solve op(R) x = b in place, R the upper-triangular QR factor.

    ``b`` is an n x 1 vector with R's column tiling.  Backward
    substitution for op='N', forward for op='C'.
    """
    a = fac.a
    nt = a.nt
    if b.shape != (a.n, 1) or b.row_heights != a.col_widths:
        raise ValueError("b must be n x 1 with R's column tiling")
    order = range(nt - 1, -1, -1) if not conj_trans else range(nt)
    for k in order:
        rt.advance_phase()
        kb = a.tile_cols(k)
        others = (range(k + 1, nt) if not conj_trans else range(k))
        for j in others:
            # b_k -= R(k,j) x_j     (N)
            # b_k -= R(j,k)^H x_j   (C)
            rref = a.ref(k, j) if not conj_trans else a.ref(j, k)
            wj = a.tile_cols(j)

            def upd(k=k, j=j):
                if not conj_trans:
                    blk = _r_block(fac, k, j)
                    b.tile(k, 0)[...] -= blk @ b.tile(j, 0)
                else:
                    blk = _r_block(fac, j, k)
                    b.tile(k, 0)[...] -= blk.conj().T @ b.tile(j, 0)

            rt.submit(TaskKind.GEMV, reads=(rref, b.ref(j, 0)),
                      writes=(b.ref(k, 0),), rank=b.owner(k, 0),
                      flops=F.gemm(kb, 1, wj), tile_dim=a.nb, fn=upd,
                      bytes_out=b.tile_nbytes(k, 0),
                      label=f"trsv.upd({k},{j})")

        def solve(k=k, kb=kb):
            import scipy.linalg as sla

            rkk = _r_block(fac, k, k)
            b.tile(k, 0)[...] = sla.solve_triangular(
                rkk, b.tile(k, 0), lower=False,
                trans="C" if conj_trans else "N", check_finite=False)

        rt.submit(TaskKind.SOLVE_VEC, reads=(a.ref(k, k), b.ref(k, 0)),
                  writes=(b.ref(k, 0),), rank=b.owner(k, 0),
                  flops=float(kb) * kb, tile_dim=a.nb, fn=solve,
                  bytes_out=b.tile_nbytes(k, 0), label=f"trsv.diag({k})")


def _scatter_vec(rt: Runtime, v: np.ndarray, x: DistMatrix) -> None:
    """Distribute a rank-0 vector into x's tiles (modeled as copies)."""
    off = 0
    for i in range(x.mt):
        h = x.tile_rows(i)
        seg = v[off:off + h]
        off += h

        def body(i=i, seg=seg):
            x.tile(i, 0)[...] = np.asarray(seg, dtype=x.dtype)[:, None]

        rt.submit(TaskKind.COPY, reads=(), writes=(x.ref(i, 0),),
                  rank=x.owner(i, 0), fn=body,
                  bytes_out=x.tile_nbytes(i, 0), label=f"scatter({i})")


def _gather_vec(rt: Runtime, x: DistMatrix) -> np.ndarray:
    """Collect x's tiles to rank 0 (modeled as copies to rank 0)."""
    # Index-assigned slots, not list.append: the gather tasks are
    # mutually independent, so the threaded backend may run them in any
    # order — append order would scramble the result vector.
    outs: List[Optional[np.ndarray]] = [None] * x.mt
    for i in range(x.mt):
        ref = rt.new_scalar_ref(x.tile_rows(i) * x.dtype.itemsize)

        def body(i=i):
            outs[i] = x.tile(i, 0).ravel().copy()

        rt.submit(TaskKind.COPY, reads=(x.ref(i, 0),), writes=(ref,),
                  rank=0, fn=body,
                  bytes_out=x.tile_rows(i) * x.dtype.itemsize,
                  label=f"gather({i})")
    if rt.numeric:
        rt.sync()  # deferred backend: the gather bodies fill `outs`
        segs = [s for s in outs if s is not None]
        return np.concatenate(segs) if segs else np.empty(0, dtype=x.dtype)
    return np.empty(0, dtype=x.dtype)


def _r_norm1(rt: Runtime, fac: QRFactors) -> ScalarResult:
    """||R||_1 over the R blocks of the factored matrix."""
    a = fac.a
    parts = {}
    mat = rt.new_matrix_id()
    refs = []
    for k in range(a.nt):
        for j in range(k, a.nt):
            ref = (mat, k, j)
            rt.register_tiles([ref], a.tile_cols(j) * 8)
            refs.append(ref)

            def body(k=k, j=j):
                parts[(k, j)] = np.sum(np.abs(_r_block(fac, k, j)), axis=0)

            rt.submit(TaskKind.NORM, reads=(a.ref(k, j),), writes=(ref,),
                      rank=a.owner(k, j),
                      flops=2.0 * a.tile_cols(k) * a.tile_cols(j),
                      tile_dim=a.nb, fn=body,
                      bytes_out=a.tile_cols(j) * 8,
                      label=f"rnorm1({k},{j})")
    box: List[Optional[float]] = [None]
    out = rt.new_scalar_ref()

    def reduce_body():
        cols = {}
        for (_k, j), v in parts.items():
            cols[j] = v if j not in cols else cols[j] + v
        box[0] = max((float(np.max(c)) for c in cols.values()), default=0.0)

    rt.submit(TaskKind.REDUCE, reads=tuple(refs), writes=(out,), rank=0,
              fn=reduce_body, bytes_out=8, label="rnorm1.reduce")
    return ScalarResult(ref=out, _box=box, _rt=rt)


def trcondest_tiled(rt: Runtime, fac: QRFactors, *,
                    cycles: Optional[int] = None) -> ScalarResult:
    """Reciprocal 1-norm condition estimate of the tiled R factor.

    Drives the shared Hager reverse-communication core with tiled
    triangular solves (Section 6.3's single-implementation design).
    Numeric mode runs the adaptive estimator; symbolic mode emits a
    fixed number of solve cycles.
    """
    a = fac.a
    n = a.n
    rnorm = _r_norm1(rt, fac)
    x = _vector(rt, a, of_cols=True)

    if not rt.numeric:
        cycles = (DEFAULT_SYMBOLIC_HAGER_CYCLES if cycles is None
                  else cycles)
        for _ in range(cycles):
            trsv_upper(rt, fac, x, conj_trans=False)
            trsv_upper(rt, fac, x, conj_trans=True)
        trsv_upper(rt, fac, x, conj_trans=False)
        out = rt.new_scalar_ref()
        rt.submit(TaskKind.REDUCE, reads=(x.ref(0, 0), rnorm.ref),
                  writes=(out,), rank=0, bytes_out=8,
                  label="trcondest.final")
        return ScalarResult(ref=out, _box=[None])

    if rnorm.value == 0.0:
        return _const_scalar(rt, 0.0, "trcondest.zero")
    diag_ok = True
    for k in range(a.nt):
        if np.any(np.diagonal(_r_block(fac, k, k)) == 0):
            diag_ok = False
            break
    if not diag_ok:
        return _const_scalar(rt, 0.0, "trcondest.singular")

    gen = one_norm_estimator(n, dtype=a.dtype)
    try:
        kind, vec = next(gen)
        while True:
            _scatter_vec(rt, vec, x)
            trsv_upper(rt, fac, x, conj_trans=(kind != SOLVE))
            result = _gather_vec(rt, x)
            kind, vec = gen.send(result)
    except StopIteration as stop:
        inv_est = float(stop.value)
    rcond = 0.0 if inv_est == 0.0 else 1.0 / (rnorm.value * inv_est)
    return _const_scalar(rt, rcond, "trcondest.final")


def _const_scalar(rt: Runtime, value: float, label: str) -> ScalarResult:
    out = rt.new_scalar_ref()
    box = [value]
    rt.submit(TaskKind.REDUCE, reads=(), writes=(out,), rank=0,
              bytes_out=8, label=label)
    return ScalarResult(ref=out, _box=box)
