"""Tiled Cholesky factorization and SPD solve (posv).

Standard right-looking tile Cholesky (lower):

    for k:  potrf(A[k,k]);  trsm column k;  herk/gemm trailing update.

``posv`` factors Z in place and solves Z X = B through forward and
backward tiled triangular solves — the Cholesky-based QDWH iteration's
``posv(W2, A^H)`` (Algorithm 1, line 41).
"""

from __future__ import annotations

from .. import flops as F
from ..dist.matrix import DistMatrix
from ..runtime.executor import Runtime
from ..runtime.task import TaskKind
from . import kernels


def potrf(rt: Runtime, a: DistMatrix) -> None:
    """In-place tiled Cholesky, lower triangle (upper left untouched)."""
    rt.begin_op()
    if a.m != a.n:
        raise ValueError(f"potrf needs a square matrix, got {a.shape}")
    if a.row_heights != a.col_widths:
        raise ValueError("potrf needs square diagonal tiles")
    nt = a.nt
    for k in range(nt):
        rt.advance_phase()
        kb = a.tile_cols(k)

        def diag(k=k):
            a.tile(k, k)[...] = kernels.potrf_kernel(a.tile(k, k))

        rt.submit(TaskKind.POTRF, reads=(a.ref(k, k),),
                  writes=(a.ref(k, k),), rank=a.owner(k, k),
                  flops=F.potrf(kb), tile_dim=a.nb, fn=diag,
                  bytes_out=a.tile_nbytes(k, k), label=f"potrf({k})")

        for i in range(k + 1, nt):

            def col_solve(i=i, k=k):
                a.tile(i, k)[...] = kernels.trsm_kernel(
                    a.tile(k, k), a.tile(i, k), lower=True,
                    conj_trans=True, side_left=False)

            rt.submit(TaskKind.TRSM, reads=(a.ref(k, k), a.ref(i, k)),
                      writes=(a.ref(i, k),), rank=a.owner(i, k),
                      flops=F.trsm(kb, a.tile_rows(i)), tile_dim=a.nb,
                      fn=col_solve, bytes_out=a.tile_nbytes(i, k),
                      label=f"potrf.trsm({i},{k})")

        for i in range(k + 1, nt):
            for j in range(k + 1, i + 1):

                def update(i=i, j=j, k=k):
                    upd = a.tile(i, k) @ a.tile(j, k).conj().T
                    t = a.tile(i, j)
                    if i == j:
                        upd = 0.5 * (upd + upd.conj().T)
                    t -= upd

                fl = (F.herk(a.tile_rows(i), kb) if i == j
                      else F.gemm(a.tile_rows(i), a.tile_cols(j), kb))
                rt.submit(TaskKind.HERK if i == j else TaskKind.GEMM,
                          reads=(a.ref(i, k), a.ref(j, k)),
                          writes=(a.ref(i, j),), rank=a.owner(i, j),
                          flops=fl, tile_dim=a.nb, fn=update,
                          bytes_out=a.tile_nbytes(i, j),
                          label=f"potrf.upd({i},{j},{k})")


def trsm_lower(rt: Runtime, l: DistMatrix, b: DistMatrix, *,
               conj_trans: bool) -> None:
    """Solve op(L) X = B in place on B, L lower triangular (tiled).

    ``conj_trans=False`` is the forward sweep, ``True`` the backward
    sweep with L^H.
    """
    rt.begin_op()
    if l.m != l.n or l.m != b.m:
        raise ValueError(f"trsm shapes: L {l.shape}, B {b.shape}")
    nt = l.nt
    if not conj_trans:
        k_range = range(nt)
    else:
        k_range = range(nt - 1, -1, -1)
    for k in k_range:
        rt.advance_phase()
        kb = l.tile_cols(k)
        for j in range(b.nt):

            def solve(k=k, j=j):
                b.tile(k, j)[...] = kernels.trsm_kernel(
                    l.tile(k, k), b.tile(k, j), lower=True,
                    conj_trans=conj_trans, side_left=True)

            rt.submit(TaskKind.TRSM, reads=(l.ref(k, k), b.ref(k, j)),
                      writes=(b.ref(k, j),), rank=b.owner(k, j),
                      flops=F.trsm(kb, b.tile_cols(j)), tile_dim=b.nb,
                      fn=solve, bytes_out=b.tile_nbytes(k, j),
                      label=f"trsm({k},{j})")
        others = (range(k + 1, nt) if not conj_trans else range(k))
        for i in others:
            for j in range(b.nt):

                def update(i=i, j=j, k=k):
                    if not conj_trans:
                        b.tile(i, j)[...] -= l.tile(i, k) @ b.tile(k, j)
                    else:
                        b.tile(i, j)[...] -= (l.tile(k, i).conj().T
                                              @ b.tile(k, j))

                lref = l.ref(i, k) if not conj_trans else l.ref(k, i)
                rt.submit(TaskKind.GEMM, reads=(lref, b.ref(k, j)),
                          writes=(b.ref(i, j),), rank=b.owner(i, j),
                          flops=F.gemm(b.tile_rows(i), b.tile_cols(j), kb),
                          tile_dim=b.nb, fn=update,
                          bytes_out=b.tile_nbytes(i, j),
                          label=f"trsm.upd({i},{j},{k})")


def posv(rt: Runtime, z: DistMatrix, b: DistMatrix) -> None:
    """Solve the SPD system Z X = B; X overwrites B, L overwrites Z.

    Z must be Hermitian positive definite with its lower triangle
    valid (herk output is fine).  This is Algorithm 1's
    ``posv(W2, A^H)``.
    """
    potrf(rt, z)
    trsm_lower(rt, z, b, conj_trans=False)
    trsm_lower(rt, z, b, conj_trans=True)
