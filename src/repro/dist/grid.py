"""Process grids: the p x q arrangement of MPI ranks.

SLATE (like ScaLAPACK) arranges ranks in a 2D grid and distributes
tiles block-cyclically over it; near-square grids minimize the
communication volume of factorizations (panel broadcasts scale with
p + q rather than p*q).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class ProcessGrid:
    """A p x q grid of ranks, column-major rank numbering (ScaLAPACK
    default): rank(r, c) = r + c * p.
    """

    p: int
    q: int

    def __post_init__(self) -> None:
        if self.p < 1 or self.q < 1:
            raise ValueError(f"grid dims must be >= 1, got {self.p} x {self.q}")

    @property
    def size(self) -> int:
        """Total number of ranks."""
        return self.p * self.q

    def rank(self, row: int, col: int) -> int:
        """Rank id of grid coordinate (row, col)."""
        if not (0 <= row < self.p and 0 <= col < self.q):
            raise IndexError(f"({row}, {col}) outside {self.p} x {self.q} grid")
        return row + col * self.p

    def coords(self, rank: int) -> Tuple[int, int]:
        """Grid coordinate (row, col) of a rank id."""
        if not (0 <= rank < self.size):
            raise IndexError(f"rank {rank} outside grid of size {self.size}")
        return rank % self.p, rank // self.p

    def ranks(self) -> Iterator[int]:
        """All rank ids."""
        return iter(range(self.size))

    def row_ranks(self, row: int) -> Tuple[int, ...]:
        """Ranks in one grid row (a row-broadcast communicator)."""
        return tuple(self.rank(row, c) for c in range(self.q))

    def col_ranks(self, col: int) -> Tuple[int, ...]:
        """Ranks in one grid column (a column-broadcast communicator)."""
        return tuple(self.rank(r, col) for r in range(self.p))

    @staticmethod
    def near_square(size: int) -> "ProcessGrid":
        """The most-square p x q factorization of ``size`` (p <= q).

        This is how the paper's runs lay out ranks (e.g. 64 ranks ->
        8 x 8; 42 -> 6 x 7).
        """
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        p = int(size ** 0.5)
        while size % p != 0:
            p -= 1
        return ProcessGrid(p, size // p)
