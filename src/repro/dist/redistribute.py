"""Tile redistribution between layouts/tilings (slate::redistribute).

Moving a matrix to a different tile size or process grid is a common
preprocessing step (e.g. accepting user data in ScaLAPACK's nb=64
layout and re-tiling to SLATE's tuned nb=320).  Each destination tile
is one task reading every source tile it overlaps — the all-to-all
communication pattern falls out of the ownership maps.
"""

from __future__ import annotations

from typing import List

from ..runtime.executor import Runtime
from ..runtime.task import TaskKind
from .matrix import DistMatrix


def _overlaps(src_offs, src_sizes, lo: int, hi: int) -> List[int]:
    """Indices of source tiles intersecting the half-open range [lo, hi)."""
    out = []
    for idx, (o, s) in enumerate(zip(src_offs, src_sizes)):
        if o < hi and o + s > lo:
            out.append(idx)
    return out


def redistribute(rt: Runtime, src: DistMatrix, dst: DistMatrix) -> None:
    """Copy ``src`` into ``dst`` across different tilings/layouts.

    Shapes and dtypes must match; tile sizes, partitions, and process
    grids are free.  Numerically exact; the task graph carries the
    all-to-all traffic for the scheduler.
    """
    rt.begin_op()
    if src.shape != dst.shape:
        raise ValueError(
            f"redistribute shape mismatch: {src.shape} vs {dst.shape}")
    if src.dtype != dst.dtype:
        raise ValueError(
            f"redistribute dtype mismatch: {src.dtype} vs {dst.dtype}")
    for di in range(dst.mt):
        r_lo = dst.row_offsets[di]
        r_hi = r_lo + dst.tile_rows(di)
        src_rows = _overlaps(src.row_offsets, src.row_heights, r_lo, r_hi)
        for dj in range(dst.nt):
            c_lo = dst.col_offsets[dj]
            c_hi = c_lo + dst.tile_cols(dj)
            src_cols = _overlaps(src.col_offsets, src.col_widths,
                                 c_lo, c_hi)
            reads = tuple(src.ref(si, sj)
                          for si in src_rows for sj in src_cols)

            def body(di=di, dj=dj, r_lo=r_lo, c_lo=c_lo,
                     src_rows=tuple(src_rows), src_cols=tuple(src_cols)):
                out = dst.tile(di, dj)
                for si in src_rows:
                    so = src.row_offsets[si]
                    sh = src.tile_rows(si)
                    # intersection in global coordinates
                    g0 = max(so, r_lo)
                    g1 = min(so + sh, r_lo + out.shape[0])
                    for sj in src_cols:
                        co = src.col_offsets[sj]
                        cw = src.tile_cols(sj)
                        h0 = max(co, c_lo)
                        h1 = min(co + cw, c_lo + out.shape[1])
                        out[g0 - r_lo:g1 - r_lo, h0 - c_lo:h1 - c_lo] = \
                            src.tile(si, sj)[g0 - so:g1 - so,
                                             h0 - co:h1 - co]

            rt.submit(TaskKind.COPY, reads=reads,
                      writes=(dst.ref(di, dj),), rank=dst.owner(di, dj),
                      flops=float(dst.tile_rows(di) * dst.tile_cols(dj)),
                      tile_dim=dst.nb, fn=body,
                      bytes_out=dst.tile_nbytes(di, dj),
                      label=f"redist({di},{dj})")
