"""2D block-cyclic tile distribution (ScaLAPACK/SLATE style).

Tile (i, j) of a tiled matrix lives on the rank at grid coordinate
``(i mod p, j mod q)``.  All layout questions — who owns a tile, which
tiles a rank owns, load balance — are answered here, so the rest of
the code never hand-rolls modular arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from .grid import ProcessGrid


@dataclass(frozen=True)
class BlockCyclic:
    """Block-cyclic map from tile indices to ranks on a process grid.

    ``row_shift``/``col_shift`` support submatrix-consistent layouts
    (a view starting at tile (i0, j0) keeps the parent's ownership by
    shifting the cycle), mirroring ScaLAPACK's RSRC/CSRC.
    """

    grid: ProcessGrid
    row_shift: int = 0
    col_shift: int = 0

    def owner_coords(self, i: int, j: int) -> Tuple[int, int]:
        """Grid coordinates owning tile (i, j)."""
        if i < 0 or j < 0:
            raise IndexError(f"tile indices must be >= 0, got ({i}, {j})")
        return ((i + self.row_shift) % self.grid.p,
                (j + self.col_shift) % self.grid.q)

    def owner(self, i: int, j: int) -> int:
        """Rank owning tile (i, j)."""
        r, c = self.owner_coords(i, j)
        return self.grid.rank(r, c)

    def tiles_of_rank(self, rank: int, mt: int, nt: int) -> Iterator[Tuple[int, int]]:
        """All tiles of an mt x nt tiled matrix owned by ``rank``."""
        r, c = self.grid.coords(rank)
        i0 = (r - self.row_shift) % self.grid.p
        j0 = (c - self.col_shift) % self.grid.q
        for i in range(i0, mt, self.grid.p):
            for j in range(j0, nt, self.grid.q):
                yield (i, j)

    def local_tile_count(self, rank: int, mt: int, nt: int) -> int:
        """Number of tiles of an mt x nt matrix on ``rank``."""
        r, c = self.grid.coords(rank)
        i0 = (r - self.row_shift) % self.grid.p
        j0 = (c - self.col_shift) % self.grid.q
        rows = max(0, (mt - i0 + self.grid.p - 1) // self.grid.p)
        cols = max(0, (nt - j0 + self.grid.q - 1) // self.grid.q)
        return rows * cols

    def load_imbalance(self, mt: int, nt: int) -> float:
        """max/mean tile count over ranks (1.0 = perfectly balanced)."""
        counts = [self.local_tile_count(r, mt, nt)
                  for r in self.grid.ranks()]
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 1.0
        return max(counts) / mean

    def shifted(self, di: int, dj: int) -> "BlockCyclic":
        """Layout of a sub-tiling starting at tile offset (di, dj)."""
        return BlockCyclic(self.grid,
                           (self.row_shift + di) % self.grid.p,
                           (self.col_shift + dj) % self.grid.q)
