"""Distributed-matrix substrate: process grids, 2D block-cyclic layout,
and tiled matrices with explicit tile ownership.

This is the simulated stand-in for SLATE's MPI layer: every tile has an
owning rank determined by the block-cyclic map, and the runtime derives
message traffic from cross-rank tile accesses, exactly as GPU-aware MPI
transfers tiles between ranks in the real library.
"""

from .grid import ProcessGrid
from .layout import BlockCyclic
from .matrix import DistMatrix, TileRef
from .redistribute import redistribute

__all__ = ["ProcessGrid", "BlockCyclic", "DistMatrix", "TileRef",
           "redistribute"]
