"""Tiled distributed matrices.

A :class:`DistMatrix` is an mt x nt grid of tiles of nominal size
nb x nb (edge tiles are smaller), each owned by the rank given by the
block-cyclic layout.  In numeric mode every tile is a real numpy
array; in symbolic mode tiles carry no data and only their metadata
(shape, bytes, owner) feeds the task graph.

Matrices do not implement math — all operations live in
:mod:`repro.tiled` and go through the :class:`repro.runtime.Runtime`
so the work is recorded as tasks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from ..config import check_dtype
from ..runtime.task import TileRef
from .layout import BlockCyclic

if TYPE_CHECKING:  # break the dist <-> runtime import cycle
    from ..runtime.executor import Runtime

__all__ = ["DistMatrix", "TileRef"]


def _uniform_partition(extent: int, nb: int) -> Tuple[int, ...]:
    """Tile heights/widths for a uniform-nb tiling with ragged tail."""
    if extent == 0:
        return ()
    full, rem = divmod(extent, nb)
    return (nb,) * full + ((rem,) if rem else ())


def _offsets(parts: Tuple[int, ...]) -> Tuple[int, ...]:
    out = [0]
    for p in parts[:-1]:
        out.append(out[-1] + p)
    return tuple(out) if parts else ()


class DistMatrix:
    """A block-cyclic tiled matrix bound to a runtime."""

    def __init__(self, rt: "Runtime", m: int, n: int, nb: int,
                 dtype=np.float64, layout: Optional[BlockCyclic] = None,
                 name: str = "",
                 row_heights: Optional[Tuple[int, ...]] = None,
                 col_widths: Optional[Tuple[int, ...]] = None) -> None:
        if m < 0 or n < 0:
            raise ValueError(f"matrix dims must be >= 0, got {m} x {n}")
        if nb < 1:
            raise ValueError(f"tile size must be >= 1, got {nb}")
        self.rt = rt
        self.m = m
        self.n = n
        self.nb = nb
        self.dtype = check_dtype(dtype)
        self.layout = layout if layout is not None else rt.default_layout()
        self.name = name
        self.mat_id = rt.new_matrix_id()
        # Tilings default to uniform nb with a ragged trailing tile;
        # explicit partitions support stacked workspaces like the
        # [sqrt(c) A; I] matrix of Algorithm 1, whose identity block
        # starts at an arbitrary row.
        self.row_heights = (tuple(row_heights) if row_heights is not None
                            else _uniform_partition(m, nb))
        self.col_widths = (tuple(col_widths) if col_widths is not None
                           else _uniform_partition(n, nb))
        if sum(self.row_heights) != m or any(h < 1 for h in self.row_heights):
            raise ValueError(f"row_heights {self.row_heights} do not tile {m}")
        if sum(self.col_widths) != n or any(w < 1 for w in self.col_widths):
            raise ValueError(f"col_widths {self.col_widths} do not tile {n}")
        self.mt = len(self.row_heights)
        self.nt = len(self.col_widths)
        self.row_offsets = _offsets(self.row_heights)
        self.col_offsets = _offsets(self.col_widths)
        self._tiles: Dict[Tuple[int, int], Optional[np.ndarray]] = {}
        rt.register_matrix(self)  # weak: executor-side tile access
        itemsize = self.dtype.itemsize
        for i in range(self.mt):
            for j in range(self.nt):
                ref = (self.mat_id, i, j)
                rt.register_tiles(
                    [ref],
                    self.tile_rows(i) * self.tile_cols(j) * itemsize,
                    owner=self.layout.owner(i, j))

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.m, self.n)

    def tile_rows(self, i: int) -> int:
        """Row count of tile-row i (edge/custom tiles may be smaller)."""
        if not (0 <= i < self.mt):
            raise IndexError(f"tile row {i} outside 0..{self.mt - 1}")
        return self.row_heights[i]

    def tile_cols(self, j: int) -> int:
        """Column count of tile-column j."""
        if not (0 <= j < self.nt):
            raise IndexError(f"tile col {j} outside 0..{self.nt - 1}")
        return self.col_widths[j]

    def ref(self, i: int, j: int) -> TileRef:
        """Dependency-tracking reference of tile (i, j)."""
        if not (0 <= i < self.mt and 0 <= j < self.nt):
            raise IndexError(f"tile ({i}, {j}) outside {self.mt} x {self.nt}")
        return (self.mat_id, i, j)

    def owner(self, i: int, j: int) -> int:
        """Rank owning tile (i, j) under the block-cyclic layout."""
        return self.layout.owner(i, j)

    def tile_nbytes(self, i: int, j: int) -> int:
        return self.tile_rows(i) * self.tile_cols(j) * self.dtype.itemsize

    # ------------------------------------------------------------------
    # Tile data access (numeric mode)
    # ------------------------------------------------------------------

    def tile(self, i: int, j: int) -> np.ndarray:
        """The tile array; allocates zeros lazily in numeric mode.

        On a deferred runtime, a *driver-level* tile access (outside a
        running execution window) first flushes the pending task window
        so the data read is exactly what eager execution would show;
        accesses from task payloads during execution never re-enter.
        """
        rt = self.rt
        if not rt.numeric:
            raise RuntimeError(
                "tile data is unavailable in symbolic mode; the perf "
                "model must not touch numerics")
        if rt.deferred and not rt._in_execution:
            rt.sync()
        san = rt._sanitizer
        if san is not None:
            # TileSan: record the access (and possibly raise) *before*
            # handing out the array, so in raise mode an undeclared
            # access never observes or mutates tile data.  A ``tile()``
            # of a declared-write tile counts as the in-place write.
            san.on_access((self.mat_id, i, j), write=False)
        key = (i, j)
        t = self._tiles.get(key)
        if t is None:
            if getattr(rt, "_worker_mode", False):
                # Worker processes see only the shared-memory tiles the
                # parent materialised for the window's declared
                # footprints; allocating here would write child-local
                # memory and silently diverge from the parent.
                raise RuntimeError(
                    f"tile ({i},{j}) of matrix {self.mat_id} is not "
                    "materialised in this worker — undeclared access?")
            t = np.zeros((self.tile_rows(i), self.tile_cols(j)),
                         dtype=self.dtype)
            self._tiles[key] = t
        return t

    def set_tile(self, i: int, j: int, data: np.ndarray) -> None:
        """Replace tile (i, j); shape and dtype must match exactly."""
        expected = (self.tile_rows(i), self.tile_cols(j))
        if data.shape != expected:
            raise ValueError(
                f"tile ({i},{j}) expects shape {expected}, got {data.shape}")
        if self.rt.deferred and not self.rt._in_execution:
            self.rt.sync()  # don't clobber a tile pending tasks still write
        san = self.rt._sanitizer
        if san is not None:
            san.on_access((self.mat_id, i, j), write=True)
        # Always copy: a contiguous slice of a caller's array would
        # otherwise be stored as a view, and in-place tile updates
        # would silently mutate the caller's data.
        cur = self._tiles.get((i, j))
        if cur is not None and getattr(self.rt, "_worker_mode", False):
            # In a worker process the existing array is a shared-memory
            # mapping; replacing it would make the write child-local.
            cur[...] = data
            return
        self._tiles[(i, j)] = np.array(data, dtype=self.dtype, copy=True,
                                       order="C")

    # ------------------------------------------------------------------
    # Whole-matrix conversion (test/driver convenience, not a tiled op)
    # ------------------------------------------------------------------

    @classmethod
    def from_array(cls, rt: "Runtime", arr: np.ndarray, nb: int,
                   layout: Optional[BlockCyclic] = None,
                   name: str = "") -> "DistMatrix":
        """Distribute a dense array into tiles (initial data placement).

        Initial distribution is free in the performance model, as in
        the paper's benchmarks (matrices are generated in place).
        """
        arr = np.asarray(arr)
        if arr.ndim != 2:
            raise ValueError(f"expected a matrix, got shape {arr.shape}")
        out = cls(rt, arr.shape[0], arr.shape[1], nb, arr.dtype,
                  layout=layout, name=name)
        if rt.numeric:
            for i in range(out.mt):
                r0 = out.row_offsets[i]
                for j in range(out.nt):
                    c0 = out.col_offsets[j]
                    out.set_tile(i, j, arr[r0:r0 + out.tile_rows(i),
                                           c0:c0 + out.tile_cols(j)])
        return out

    def to_array(self) -> np.ndarray:
        """Gather all tiles into a dense array (numeric mode only)."""
        if not self.rt.numeric:
            raise RuntimeError("cannot gather a symbolic matrix")
        san = self.rt._sanitizer
        if san is not None:
            # A gather inside a payload is a re-entrant sync hazard
            # (the inner sync is suppressed; pending writes are lost).
            san.on_sync((self.mat_id, -1, -1), "DistMatrix.to_array()")
        self.rt.sync()  # deferred runtimes: materialize pending writes
        out = np.zeros((self.m, self.n), dtype=self.dtype)
        for i in range(self.mt):
            r0 = self.row_offsets[i]
            for j in range(self.nt):
                t = self._tiles.get((i, j))
                if t is not None:
                    c0 = self.col_offsets[j]
                    out[r0:r0 + t.shape[0], c0:c0 + t.shape[1]] = t
        return out

    def save(self, path: str) -> str:
        """Persist the matrix (dense gather + geometry) to ``.npz``."""
        np.savez(path, data=self.to_array(), nb=self.nb,
                 row_heights=np.asarray(self.row_heights),
                 col_widths=np.asarray(self.col_widths))
        return path

    @classmethod
    def load(cls, rt: "Runtime", path: str) -> "DistMatrix":
        """Rebuild a saved matrix on this runtime's grid."""
        with np.load(path) as z:
            out = cls(rt, z["data"].shape[0], z["data"].shape[1],
                      int(z["nb"]),
                      dtype=z["data"].dtype,
                      row_heights=tuple(int(h) for h in z["row_heights"]),
                      col_widths=tuple(int(w) for w in z["col_widths"]))
            if rt.numeric:
                arr = z["data"]
                for i in range(out.mt):
                    r0 = out.row_offsets[i]
                    for j in range(out.nt):
                        c0 = out.col_offsets[j]
                        out.set_tile(i, j,
                                     arr[r0:r0 + out.tile_rows(i),
                                         c0:c0 + out.tile_cols(j)])
        return out

    def like(self, m: Optional[int] = None, n: Optional[int] = None,
             name: str = "") -> "DistMatrix":
        """A new (zero / symbolic) matrix with this one's nb/dtype/grid."""
        return DistMatrix(self.rt,
                          self.m if m is None else m,
                          self.n if n is None else n,
                          self.nb, self.dtype, layout=self.layout, name=name)

    def __repr__(self) -> str:
        mode = "numeric" if self.rt.numeric else "symbolic"
        nm = f" {self.name!r}" if self.name else ""
        return (f"DistMatrix({self.m}x{self.n}, nb={self.nb}, "
                f"{self.dtype.name}, {self.mt}x{self.nt} tiles, {mode}{nm})")
