"""End-to-end QDWH performance simulation.

``simulate_qdwh(machine, nodes, n, impl, ...)`` reproduces one data
point of the paper's performance figures:

1. derive the run configuration from the implementation name
   (``slate_gpu`` / ``slate_cpu`` / ``scalapack``) and the machine's
   rank layout (Section 7.1 settings);
2. build the symbolic task graph of Algorithm 1 for an n x n
   ill-conditioned matrix (the scalar weight schedule fixes the
   QR/Cholesky iteration split);
3. simulate the graph on the machine model — task-based with unbounded
   lookahead for SLATE, bulk-synchronous fork-join for ScaLAPACK;
4. report Tflop/s the paper's way: the Section 4 *algorithmic* flop
   count divided by the simulated wall time.

Task-count control: tile grids are capped at ``max_tiles`` per
dimension; the tasks' efficiency lookups still use the *requested*
tile size (``Runtime.tile_dim_hint``), so a coarse-grid task models a
group of real-nb kernels with the same total flops.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .. import flops as F
from ..core.tiled_qdwh import tiled_qdwh
from ..dist.grid import ProcessGrid
from ..dist.matrix import DistMatrix
from ..machines.machine import MachineModel
from ..runtime.executor import Runtime
from ..runtime.graph import TaskGraph
from ..runtime.scheduler import (
    RunConfig,
    ScheduleResult,
    forkjoin_config,
    simulate,
    taskbased_config,
)

#: Per-machine run settings (Section 7.1): ranks per node and the tuned
#: tile sizes for each implementation.
IMPLEMENTATIONS: Dict[str, Dict[str, Dict[str, int]]] = {
    "summit": {
        "slate_gpu": {"ranks_per_node": 2, "nb": 320},
        "slate_cpu": {"ranks_per_node": 2, "nb": 192},
        # POLAR runs 1 rank/core (42/node); the simulation aggregates
        # cores into 2 super-ranks/node (same total compute, same BSP
        # fork-join semantics) so coarse tile grids do not create
        # artificial load imbalance across 1000+ ranks.
        "scalapack": {"ranks_per_node": 2, "nb": 192},
    },
    "frontier": {
        "slate_gpu": {"ranks_per_node": 8, "nb": 320},
        "slate_cpu": {"ranks_per_node": 8, "nb": 192},
        "scalapack": {"ranks_per_node": 8, "nb": 192},
    },
    # Aurora ("upcoming" at publication; contribution #5's SYCL port).
    "aurora": {
        "slate_gpu": {"ranks_per_node": 12, "nb": 320},
        "slate_cpu": {"ranks_per_node": 12, "nb": 192},
        "scalapack": {"ranks_per_node": 12, "nb": 192},
    },
}


@dataclass
class PerfPoint:
    """One simulated performance measurement."""

    machine: str
    impl: str
    nodes: int
    n: int
    nb: int
    nb_sim: int
    it_qr: int
    it_chol: int
    makespan: float
    model_flops: float
    executed_flops: float
    task_count: int
    schedule: ScheduleResult
    #: Wall-clock seconds of a real (threaded-backend) run of the same
    #: problem, when one was taken; None for purely simulated points.
    measured_s: Optional[float] = None

    @property
    def tflops(self) -> float:
        """Tflop/s over the paper's algorithmic flop count."""
        if self.makespan == 0.0:
            return 0.0  # degenerate run (empty graph / n=0)
        return self.model_flops / self.makespan / 1e12

    @property
    def executed_tflops(self) -> float:
        if self.makespan == 0.0:
            return 0.0
        return self.executed_flops / self.makespan / 1e12


def _grid_for(ranks: int) -> ProcessGrid:
    return ProcessGrid.near_square(ranks)


def build_qdwh_graph(n: int, nb_sim: int, grid: ProcessGrid, *,
                     cond: float = 1e16, nb_rate: Optional[int] = None,
                     m: Optional[int] = None, dtype=np.float64
                     ) -> Tuple[TaskGraph, int, int]:
    """Symbolic Algorithm-1 task graph for an m x n, cond-kappa matrix.

    ``nb_sim`` is the (possibly coarsened) simulation tile size;
    ``nb_rate`` the tile size used for device-efficiency lookups
    (defaults to nb_sim).  ``dtype`` sizes the transfers (complex
    doubles the bytes) and scales the flops (a complex operation costs
    ~4 real ones); device rates stay the machine's DP rates, matching
    how vendors report zgemm in DP-flop terms.
    """
    if m is None:
        m = n
    rt = Runtime(grid, numeric=False,
                 tile_dim_hint=nb_rate if nb_rate else None)
    if nb_rate and nb_sim > nb_rate:
        rt.coarse_hint = nb_sim / nb_rate
    from ..config import is_complex
    from ..flops import COMPLEX_FLOP_FACTOR
    if is_complex(dtype):
        rt.flops_scale = COMPLEX_FLOP_FACTOR
    a = DistMatrix(rt, m, n, nb_sim, dtype, name="A")
    res = tiled_qdwh(rt, a, cond_est=cond)
    return rt.graph, res.it_qr, res.it_chol


def simulate_qdwh(machine: MachineModel, nodes: int, n: int, impl: str, *,
                  cond: float = 1e16,
                  nb: Optional[int] = None,
                  max_tiles: int = 20,
                  lookahead: Optional[int] = None,
                  m: Optional[int] = None,
                  dtype=np.float64,
                  keep_trace: bool = False,
                  sink=None,
                  faults=None) -> PerfPoint:
    """Simulate one (machine, nodes, n, implementation) data point.

    ``sink`` is forwarded to :func:`repro.runtime.scheduler.simulate`
    (a :class:`repro.obs.timeline.TraceSink` capturing the full task
    timeline); leave ``None`` for an untraced run.  ``faults`` is an
    optional :class:`repro.resilience.faults.FaultPlan` injected into
    the schedule; ``schedule.recovery`` then reports the recovery cost.
    """
    try:
        settings = IMPLEMENTATIONS[machine.name][impl]
    except KeyError:
        raise ValueError(
            f"unknown implementation {impl!r} for machine "
            f"{machine.name!r}; expected one of "
            f"{sorted(IMPLEMENTATIONS.get(machine.name, {}))}") from None
    rpn = settings["ranks_per_node"]
    nb_real = nb if nb is not None else settings["nb"]
    ranks = machine.ranks(nodes, rpn)
    grid = _grid_for(ranks)

    # Coarsen the tile grid if the real tiling would exceed max_tiles
    # per dimension (task-count control; rates still use nb_real).
    mm = m if m is not None else n
    nb_sim = nb_real
    if math.ceil(mm / nb_real) > max_tiles or math.ceil(n / nb_real) > max_tiles:
        nb_sim = max(nb_real, math.ceil(max(mm, n) / max_tiles))

    graph, it_qr, it_chol = build_qdwh_graph(
        n, nb_sim, grid, cond=cond, nb_rate=nb_real, m=m, dtype=dtype)

    use_gpu = impl == "slate_gpu"
    if impl == "scalapack":
        cfg = forkjoin_config(machine, nodes, rpn, use_gpu=False)
    else:
        cfg = taskbased_config(machine, nodes, rpn, use_gpu=use_gpu,
                               lookahead=lookahead)
    sched = simulate(graph, cfg, keep_trace=keep_trace, sink=sink,
                     faults=faults)
    from ..config import is_complex
    model_flops = F.qdwh_total(n, it_qr, it_chol, m=mm)
    if is_complex(dtype):
        model_flops *= F.COMPLEX_FLOP_FACTOR
    return PerfPoint(
        machine=machine.name, impl=impl, nodes=nodes, n=n,
        nb=nb_real, nb_sim=nb_sim, it_qr=it_qr, it_chol=it_chol,
        makespan=sched.makespan, model_flops=model_flops,
        executed_flops=sched.total_flops, task_count=sched.task_count,
        schedule=sched)


def simulate_custom(machine: MachineModel, nodes: int, n: int, *,
                    ranks_per_node: int, use_gpu: bool,
                    lookahead: Optional[int] = None,
                    barrier_per_phase: bool = False,
                    cond: float = 1e16, nb: int = 320,
                    max_tiles: int = 20) -> PerfPoint:
    """Free-form configuration (ablation studies)."""
    ranks = machine.ranks(nodes, ranks_per_node)
    grid = _grid_for(ranks)
    nb_sim = nb
    if math.ceil(n / nb) > max_tiles:
        nb_sim = max(nb, math.ceil(n / max_tiles))
    graph, it_qr, it_chol = build_qdwh_graph(
        n, nb_sim, grid, cond=cond, nb_rate=nb)
    cfg = RunConfig(machine=machine, nodes=nodes,
                    ranks_per_node=ranks_per_node, use_gpu=use_gpu,
                    lookahead=lookahead,
                    barrier_per_phase=barrier_per_phase)
    sched = simulate(graph, cfg)
    return PerfPoint(
        machine=machine.name,
        impl=f"custom(gpu={use_gpu},la={lookahead},bsp={barrier_per_phase})",
        nodes=nodes, n=n, nb=nb, nb_sim=nb_sim, it_qr=it_qr,
        it_chol=it_chol, makespan=sched.makespan,
        model_flops=F.qdwh_total(n, it_qr, it_chol),
        executed_flops=sched.total_flops, task_count=sched.task_count,
        schedule=sched)
