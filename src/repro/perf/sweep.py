"""Parameter sweeps reproducing the paper's figures.

Each helper returns plain data (lists of PerfPoint) so the benchmark
harness can print the same rows/series the paper plots.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..machines.machine import MachineModel
from .model import PerfPoint, simulate_qdwh

#: Matrix sizes per node count, mirroring the paper's x-axes.  The
#: largest size per node count respects the memory-footprint model
#: (:mod:`repro.perf.memory`) — e.g. 175k on 16 Frontier nodes, the
#: paper's stated ceiling.
SUMMIT_SIZES: Dict[int, Sequence[int]] = {
    1: (5_000, 10_000, 20_000, 30_000, 40_000),
    4: (10_000, 20_000, 40_000, 60_000, 80_000),
    8: (20_000, 40_000, 80_000, 100_000, 125_000),
    16: (40_000, 80_000, 120_000, 175_000),
    32: (40_000, 80_000, 160_000, 250_000),
}

FRONTIER_SIZES: Dict[int, Sequence[int]] = {
    1: (10_000, 20_000, 40_000),
    2: (20_000, 40_000, 60_000),
    4: (20_000, 40_000, 80_000),
    8: (40_000, 80_000, 120_000),
    16: (40_000, 80_000, 120_000, 150_000, 175_000),
}


def figure_series(machine: MachineModel, nodes: int,
                  impls: Iterable[str],
                  sizes: Optional[Sequence[int]] = None, *,
                  max_tiles: int = 20,
                  cond: float = 1e16) -> Dict[str, List[PerfPoint]]:
    """Tflop/s-vs-size series for one node count (Figs. 2, 3, 5)."""
    if sizes is None:
        table = SUMMIT_SIZES if machine.name == "summit" else FRONTIER_SIZES
        sizes = table[nodes]
    out: Dict[str, List[PerfPoint]] = {}
    for impl in impls:
        pts = []
        for n in sizes:
            pts.append(simulate_qdwh(machine, nodes, n, impl,
                                     max_tiles=max_tiles, cond=cond))
        out[impl] = pts
    return out


def scaling_series(machine: MachineModel, node_counts: Sequence[int],
                   impl: str = "slate_gpu", *,
                   sizes_per_nodes: Optional[Dict[int, Sequence[int]]] = None,
                   max_tiles: int = 20) -> Dict[int, List[PerfPoint]]:
    """Tflop/s-vs-size series per node count (Figs. 4 and 6)."""
    if sizes_per_nodes is None:
        sizes_per_nodes = (SUMMIT_SIZES if machine.name == "summit"
                           else FRONTIER_SIZES)
    out: Dict[int, List[PerfPoint]] = {}
    for nodes in node_counts:
        out[nodes] = [simulate_qdwh(machine, nodes, n, impl,
                                    max_tiles=max_tiles)
                      for n in sizes_per_nodes[nodes]]
    return out


def speedup_table(machine: MachineModel, node_counts: Sequence[int], *,
                  sizes: Optional[Dict[int, Sequence[int]]] = None,
                  max_tiles: int = 20) -> List[dict]:
    """Max SLATE-GPU over ScaLAPACK speedup per node count (the 18x).

    For each node count, simulates both implementations over the size
    sweep and reports the largest ratio — the paper's headline metric.
    """
    rows = []
    for nodes in node_counts:
        series = figure_series(machine, nodes, ("slate_gpu", "scalapack"),
                               sizes.get(nodes) if sizes else None,
                               max_tiles=max_tiles)
        best = 0.0
        best_n = 0
        for pg, ps in zip(series["slate_gpu"], series["scalapack"]):
            if ps.tflops > 0 and pg.tflops / ps.tflops > best:
                best = pg.tflops / ps.tflops
                best_n = pg.n
        rows.append({"nodes": nodes, "speedup": best, "at_n": best_n})
    return rows


def tile_size_sweep(machine: MachineModel, n: int, impl: str,
                    nbs: Sequence[int], *, nodes: int = 1,
                    max_tiles: int = 64) -> List[PerfPoint]:
    """Tflop/s vs tile size (the paper's nb=320 GPU / nb=192 CPU tuning).

    Run at a size small enough that the true tiling is simulated (no
    coarsening), so the parallelism-vs-kernel-efficiency trade-off is
    visible.
    """
    return [simulate_qdwh(machine, nodes, n, impl, nb=nb,
                          max_tiles=max_tiles) for nb in nbs]
