"""Performance model: the simulated benchmarking campaign.

Builds symbolic QDWH task graphs at paper scale and simulates them on
the Summit/Frontier machine models under the task-based (SLATE) or
fork-join (ScaLAPACK/POLAR) execution models, reporting Tflop/s the way
the paper does (useful algorithmic flops over wall time).
"""

from .model import (
    IMPLEMENTATIONS,
    PerfPoint,
    build_qdwh_graph,
    simulate_qdwh,
)
from .memory import (
    MemoryFootprint,
    max_feasible_n,
    qdwh_footprint,
    qdwh_workspace_elements,
)
from .report import (
    measured_vs_model,
    parallel_efficiency,
    profile_report,
)
from .sweep import (
    figure_series,
    scaling_series,
    speedup_table,
    tile_size_sweep,
)

__all__ = [
    "IMPLEMENTATIONS",
    "PerfPoint",
    "build_qdwh_graph",
    "simulate_qdwh",
    "measured_vs_model",
    "parallel_efficiency",
    "profile_report",
    "figure_series",
    "scaling_series",
    "speedup_table",
    "tile_size_sweep",
    "MemoryFootprint",
    "qdwh_footprint",
    "qdwh_workspace_elements",
    "max_feasible_n",
]
