"""Performance model of the SVD-based polar decomposition baseline.

Section 3 of the paper: "Previous work [37] demonstrated that the POLAR
QDWH implementation for the polar decomposition outperforms the
SVD-based implementation by up to 5x on ill-conditioned matrices", and
Section 4 explains *why*: "it is challenging to remove memory-bound
Level 2 BLAS operations [from the SVD], and data dependencies prevent a
lookahead technique to overlap communication and computation".

The model follows that structure (flop counts per Dongarra et al.,
"The Singular Value Decomposition: Anatomy of Optimizing an Algorithm
for Extreme Scale", SIAM Review 2018):

* bidiagonal reduction: 8/3 n^3 flops, HALF of which are Level-2
  (gemv-class) and run at memory-bound rates — the structural
  bottleneck;
* bidiagonal SVD (D&C) + back-transformation of U and V: ~ 4 n^3
  Level-3 flops;
* polar assembly U_p = U V^H and H = V Sigma V^H: 4 n^3 gemm flops.

Time = sum of phase times at the device's rates, with no cross-phase
overlap (the no-lookahead property the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machines.machine import MachineModel
from ..runtime.task import TaskKind


#: Fraction of the node's bandwidth-bound gemv rate PDGEBRD sustains.
PDGEBRD_EFFICIENCY = 0.25


@dataclass(frozen=True)
class SvdPolarPoint:
    """One simulated SVD-based polar decomposition data point."""

    machine: str
    nodes: int
    n: int
    makespan: float
    model_flops: float
    level2_seconds: float
    level3_seconds: float

    @property
    def tflops(self) -> float:
        return self.model_flops / self.makespan / 1e12

    @property
    def level2_share(self) -> float:
        return self.level2_seconds / self.makespan


def simulate_svd_polar(machine: MachineModel, nodes: int, n: int, *,
                       ranks_per_node: int = 2, use_gpu: bool = False,
                       nb: int = 192,
                       parallel_efficiency: float = 0.75
                       ) -> SvdPolarPoint:
    """Phase-level model of ScaLAPACK's SVD-based polar decomposition.

    Level-3 phases run at the aggregate gemm rate (with a fork-join
    parallel-efficiency factor); the Level-2 half of the bidiagonal
    reduction runs at memory-bound rates — modeled with the COPY-class
    (bandwidth) rate, since gemv streams the trailing matrix once per
    panel column.
    """
    n3 = float(n) ** 3
    flops_brd = (8.0 / 3.0) * n3           # bidiagonal reduction
    flops_brd_l2 = flops_brd / 2.0          # its gemv half
    flops_brd_l3 = flops_brd - flops_brd_l2
    flops_bdsvd = 4.0 * n3                  # D&C + back-transforms
    flops_polar = 4.0 * n3                  # U V^H and V Sigma V^H
    total = flops_brd + flops_bdsvd + flops_polar

    ranks = machine.ranks(nodes, ranks_per_node)
    res = machine.rank_resources(ranks_per_node, use_gpu=use_gpu)
    if use_gpu and machine.gpu is not None:
        l3_rate = (machine.gpu.rate(TaskKind.GEMM, nb) * 1e9
                   * res.gpus * ranks)
        # Level-2 stays on the CPU even in accelerated SVDs (the
        # panels are latency-bound) — same bottleneck.
        l2_rate = (machine.cpu.rate(TaskKind.COPY, nb) * 1e9
                   * res.cores * ranks)
    else:
        l3_rate = (machine.cpu.rate(TaskKind.GEMM, nb) * 1e9
                   * res.cores * ranks)
        l2_rate = (machine.cpu.rate(TaskKind.COPY, nb) * 1e9
                   * res.cores * ranks)
    l3_rate *= parallel_efficiency
    # ScaLAPACK's two-sided bidiagonal reduction achieves a small
    # fraction of even the bandwidth bound in practice (column-at-a-time
    # updates thrash caches, each gemv pair synchronizes the grid).
    # 0.25 is calibrated against the published PDGEBRD rates that
    # underlie the "up to 5x" comparison in Sukkari et al. (TOMS 2019).
    l2_rate *= PDGEBRD_EFFICIENCY
    # ... and the panels barely scale across nodes (column-broadcast
    # bound): charge them at single-node aggregate bandwidth.
    l2_rate = (l2_rate / nodes) if nodes > 1 else l2_rate

    t_l2 = flops_brd_l2 / l2_rate
    t_l3 = (flops_brd_l3 + flops_bdsvd + flops_polar) / l3_rate
    return SvdPolarPoint(machine=machine.name, nodes=nodes, n=n,
                         makespan=t_l2 + t_l3, model_flops=total,
                         level2_seconds=t_l2, level3_seconds=t_l3)
