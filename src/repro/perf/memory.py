"""Memory-footprint model of the QDWH algorithm.

Section 7.2: "The maximum matrix size that can be tested on this number
of nodes is 175k, due to the large memory footprint of the algorithm,
as discussed in [37]."

QDWH's distributed workspaces (Algorithm 1, lines 4-8) for an m x n
problem are:

====================  ===========  ================================
matrix                shape        role
====================  ===========  ================================
A                     m x n        input / iterate / output U
Acpy                  m x n        backup for H = U^H A
W = [W1; W2]          (m+n) x n    stacked QR workspace
Q = [Q1; Q2]          (m+n) x n    explicit orthogonal factor
prev (conv check)     m x n        A_{k-1}
Z / W2                n x n        Gram matrix (Cholesky variant)
A^H workspace         n x m        posv right-hand side
H                     n x n        output
T/V side buffers      ~ m x nb     QR panel storage
====================  ===========  ================================

Totals ~ (7 m n + 3 n^2) elements for square matrices — a ~10x
overhead on the input, which is exactly why the paper runs out of HBM
at n = 175k on 128 GCDs (64 GiB each).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..machines.machine import MachineModel

#: Runtime buffering on top of the algorithmic workspaces: SLATE GPU
#: runs keep an origin (host) copy plus device copies of local tiles
#: (~2x), and add broadcast-halo tiles and lookahead panel workspaces.
#: Calibrated so the model reproduces the paper's reported n = 175k
#: ceiling on 16 Frontier nodes (the only footprint datum it gives).
RUNTIME_BUFFER_MULTIPLIER = 3.5

#: HBM per GPU/GCD in bytes for the modeled machines.
GPU_MEMORY_BYTES = {
    "summit": 16 * 2 ** 30,    # V100 16 GiB
    "frontier": 64 * 2 ** 30,  # MI250X GCD 64 GiB
    "aurora": 64 * 2 ** 30,    # PVC stack 64 GiB
}

#: Host memory per node (bytes).
HOST_MEMORY_BYTES = {
    "summit": 512 * 2 ** 30,
    "frontier": 512 * 2 ** 30,
    "aurora": 1024 * 2 ** 30,  # DDR5 + HBM tiers
}


@dataclass(frozen=True)
class MemoryFootprint:
    """QDWH workspace accounting for one problem size."""

    m: int
    n: int
    itemsize: int
    total_bytes: int
    per_rank_bytes: int
    capacity_bytes: int
    fits: bool

    @property
    def overhead_factor(self) -> float:
        """Workspace bytes over input-matrix bytes."""
        return self.total_bytes / (self.m * self.n * self.itemsize)


def qdwh_workspace_elements(m: int, n: int, nb: int = 320) -> int:
    """Total distributed elements of Algorithm 1's workspaces."""
    if m < n:
        raise ValueError(f"requires m >= n, got {m} x {n}")
    mn = m * n
    stacked = (m + n) * n
    return (
        mn            # A (iterate / U)
        + mn          # Acpy
        + stacked     # W
        + stacked     # Q
        + mn          # prev (A_{k-1} for the convergence norm)
        + n * n       # Z / W2
        + n * m       # A^H posv workspace
        + n * n       # H
        + (m + n) * nb  # T/V panel side buffers (one active panel)
    )


def qdwh_footprint(machine: MachineModel, nodes: int, n: int, *,
                   ranks_per_node: int, use_gpu: bool,
                   m: Optional[int] = None, nb: int = 320,
                   itemsize: int = 8,
                   device_resident: bool = False) -> MemoryFootprint:
    """Does an n x n QDWH fit in the run configuration's memory?

    SLATE keeps the *origin* copy of every tile in host DRAM and
    streams/caches tiles on the devices, so the binding capacity is
    host memory even for GPU runs (``device_resident=False``, the
    default).  ``device_resident=True`` asks instead whether the whole
    working set fits in aggregate HBM (the fully-resident regime where
    no H2D restaging ever happens).
    """
    if m is None:
        m = n
    total = int(qdwh_workspace_elements(m, n, nb) * itemsize
                * RUNTIME_BUFFER_MULTIPLIER)
    ranks = machine.ranks(nodes, ranks_per_node)
    per_rank = total // ranks
    if use_gpu and device_resident:
        res = machine.rank_resources(ranks_per_node, use_gpu=True)
        capacity = GPU_MEMORY_BYTES[machine.name] * res.gpus
    else:
        capacity = HOST_MEMORY_BYTES[machine.name] // ranks_per_node
    return MemoryFootprint(m=m, n=n, itemsize=itemsize,
                           total_bytes=total, per_rank_bytes=per_rank,
                           capacity_bytes=capacity,
                           fits=per_rank <= capacity)


def max_feasible_n(machine: MachineModel, nodes: int, *,
                   ranks_per_node: int, use_gpu: bool,
                   itemsize: int = 8, hi: int = 2_000_000) -> int:
    """Largest square n whose QDWH working set fits (binary search).

    Reproduces the paper's n = 175k limit on 16 Frontier nodes.
    """
    lo, hi_b = 1, hi
    while lo < hi_b:
        mid = (lo + hi_b + 1) // 2
        fp = qdwh_footprint(machine, nodes, mid,
                            ranks_per_node=ranks_per_node,
                            use_gpu=use_gpu, itemsize=itemsize)
        if fp.fits:
            lo = mid
        else:
            hi_b = mid - 1
    return lo


def round_down_to(n: int, step: int = 5000) -> int:
    """Benchmark sizes are round numbers; snap the limit down."""
    return (n // step) * step if n >= step else n
