"""Profiling-campaign reports (the paper's Section 1 "thorough
performance benchmarking and profiling campaigns").

Turns one :class:`~repro.perf.model.PerfPoint` into the breakdowns an
HPC profiler would show: per-kernel busy shares, communication volume
by path, rank utilization, stall attribution, and the critical-path
composition.  Aggregations come from :mod:`repro.obs.export` — the
observability subsystem is the single source of truth — and a run
traced with a :class:`repro.obs.timeline.TimelineSink` can be passed
in to extend the report with timeline-level detail.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..bench.tables import format_table
from ..obs.export import kernel_breakdown, rank_utilization
from ..obs.timeline import TimelineSink
from .model import PerfPoint


def parallel_efficiency(walls: Dict[int, float],
                        baseline: int = 1) -> Dict[int, float]:
    """Parallel efficiency T(b)*b / (w * T(w)) per worker count.

    ``walls`` maps worker count -> measured wall-clock seconds.  The
    reference is the ``baseline`` worker count (default 1); when that
    run is missing the smallest measured worker count stands in, so a
    sweep that skipped the serial run still reports relative
    efficiency instead of raising.  An empty ``walls`` returns ``{}``.
    Efficiency 1.0 is perfect linear scaling; values slightly above
    1.0 can occur from cache effects and are reported as-is.
    """
    if not walls:
        return {}
    for w in walls:
        if w < 1:
            raise ValueError(f"worker count must be >= 1, got {w}")
    b = baseline if baseline in walls else min(walls)
    ref = walls[b] * b
    out: Dict[int, float] = {}
    for w, tw in sorted(walls.items()):
        out[w] = 0.0 if tw == 0.0 else ref / (w * tw)
    return out


def measured_vs_model(point: PerfPoint) -> str:
    """One-line measured-vs-modeled comparison for a PerfPoint.

    Requires :attr:`PerfPoint.measured_s`; the ratio says how far the
    machine model is from the real threaded-backend wall clock (> 1:
    the model is optimistic; < 1: pessimistic).
    """
    if point.measured_s is None:
        raise ValueError("PerfPoint has no measured_s; run the threads "
                         "backend to obtain a measurement")
    ratio = (point.measured_s / point.makespan
             if point.makespan > 0.0 else float("inf"))
    return (f"measured {point.measured_s:.3f} s vs modeled "
            f"{point.makespan:.3f} s (measured/model {ratio:.2f}x)")


def recovery_report(stats) -> str:
    """Render a :class:`repro.resilience.faults.RecoveryStats` as a
    table (live threaded-backend runs and fault simulations alike).

    Only non-zero counters appear; an all-quiet run renders as a
    single line so fault-free reports stay clean.
    """
    d = stats.as_dict()
    rows: List[List[str]] = []
    for key, value in d.items():
        if key == "dead_ranks":
            if value:
                rows.append([key, ", ".join(str(r) for r in value)])
            continue
        if isinstance(value, float):
            if value > 0.0:
                rows.append([key, f"{value:.4f}"])
        elif value:
            rows.append([key, str(value)])
    if not rows:
        return "recovery: clean run (no faults, retries, or guards)\n"
    return format_table("recovery", ["event", "count"], rows) + "\n"


def profile_report(point: PerfPoint,
                   timeline: Optional[TimelineSink] = None) -> str:
    """A multi-section text report for one simulated run.

    ``timeline`` is an optional sink that captured the same run
    (``simulate_qdwh(..., sink=sink)``); when given, the report adds
    transfer-volume and slot-level sections only the full task
    timeline can provide.
    """
    s = point.schedule
    lines: List[str] = []
    lines.append(
        f"=== {point.machine} x{point.nodes} nodes | n={point.n} "
        f"| {point.impl} | nb={point.nb} ===")
    lines.append(
        f"iterations: {point.it_qr} QR + {point.it_chol} Cholesky | "
        f"makespan {point.makespan:.2f} s | "
        f"{point.tflops:.2f} Tflop/s (model) / "
        f"{point.executed_tflops:.2f} (executed)")

    rows = [[k, f"{busy:.1f}", f"{share * 100:.1f}%"]
            for k, busy, share in kernel_breakdown(s)]
    lines.append(format_table("kernel busy time",
                              ["kind", "busy (s)", "share"], rows))

    util = rank_utilization(s)
    lines.append(
        f"rank utilization: min {util['min']:.2f} / mean "
        f"{util['mean']:.2f} / max {util['max']:.2f} "
        "(busy fraction per execution slot; 1.0 = always busy)")

    stalls = s.stall_seconds or {}
    if any(sec > 0.0 for sec in stalls.values()):
        srow = [[cause, f"{sec:.3g}"]
                for cause, sec in sorted(stalls.items(),
                                         key=lambda r: -r[1])]
        lines.append(format_table("slot stall time",
                                  ["cause", "seconds"], srow))

    comm = s.comm.as_dict()
    crow = [[path, f"{b / 1e9:.2f}"]
            for path, b in comm.get("bytes", {}).items()]
    if crow:
        lines.append(format_table("communication volume",
                                  ["path", "GB"], crow))
    else:
        lines.append("communication volume: none (single rank)")
    lines.append(
        f"critical path: {s.critical_path:.2f} s "
        f"({s.critical_path / point.makespan * 100:.0f}% of makespan)")
    if point.measured_s is not None:
        lines.append(measured_vs_model(point))

    if timeline is not None and len(timeline):
        trow = [[leg, f"{b / 1e9:.2f}"]
                for leg, b in sorted(timeline.transfer_bytes().items())]
        if trow:
            lines.append(format_table("timeline transfer volume",
                                      ["leg", "GB"], trow))
        lines.append(
            f"timeline: {len(timeline.tasks)} task events on "
            f"{len(timeline.slots())} distinct slots, "
            f"{len(timeline.transfers)} transfers, "
            f"{len(timeline.barriers)} barriers")
    return "\n".join(lines) + "\n"
