"""Profiling-campaign reports (the paper's Section 1 "thorough
performance benchmarking and profiling campaigns").

Turns one :class:`~repro.perf.model.PerfPoint` into the breakdowns an
HPC profiler would show: per-kernel busy shares, communication volume
by path, rank utilization, and the critical-path composition.
"""

from __future__ import annotations

from typing import List

from ..bench.tables import format_table
from ..runtime.trace import kernel_breakdown, rank_utilization
from .model import PerfPoint


def profile_report(point: PerfPoint) -> str:
    """A multi-section text report for one simulated run."""
    s = point.schedule
    lines: List[str] = []
    lines.append(
        f"=== {point.machine} x{point.nodes} nodes | n={point.n} "
        f"| {point.impl} | nb={point.nb} ===")
    lines.append(
        f"iterations: {point.it_qr} QR + {point.it_chol} Cholesky | "
        f"makespan {point.makespan:.2f} s | "
        f"{point.tflops:.2f} Tflop/s (model) / "
        f"{point.executed_tflops:.2f} (executed)")

    rows = [[k, f"{busy:.1f}", f"{share * 100:.1f}%"]
            for k, busy, share in kernel_breakdown(s)]
    lines.append(format_table("kernel busy time",
                              ["kind", "busy (s)", "share"], rows))

    util = rank_utilization(s)
    lines.append(
        f"rank utilization: min {util['min']:.2f} / mean "
        f"{util['mean']:.2f} / max {util['max']:.2f} "
        "(busy-slot-seconds over makespan)")

    comm = s.comm.as_dict()
    crow = [[path, f"{b / 1e9:.2f}"]
            for path, b in comm.get("bytes", {}).items()]
    if crow:
        lines.append(format_table("communication volume",
                                  ["path", "GB"], crow))
    else:
        lines.append("communication volume: none (single rank)")
    lines.append(
        f"critical path: {s.critical_path:.2f} s "
        f"({s.critical_path / point.makespan * 100:.0f}% of makespan)")
    return "\n".join(lines) + "\n"
