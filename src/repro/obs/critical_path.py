"""Critical-path analysis over *executed* task graphs.

:meth:`repro.runtime.graph.TaskGraph.critical_path_seconds` bounds a
schedule from *modeled* durations; this module works the other way
round — it explains a **measured** run.  Given the recorded
:class:`~repro.runtime.graph.TaskGraph` and the measured
:class:`~repro.obs.timeline.TaskEvent` stream the threaded backend
emitted, it answers the profiler questions:

* :func:`critical_path` — the longest *executed* chain: walk backwards
  from the last-finishing task, at each step to whichever predecessor
  released it last (a dependency, or the previous task on the same
  worker lane).  Each chain segment carries the task's measured
  duration plus the *wait* before it started, so
  ``task_seconds + wait_seconds`` telescopes to the measured makespan
  exactly — the reconciliation invariant the bench harness gates on.
* :func:`slack` — classic CPM slack per task under measured durations:
  how much a task could slip without stretching the dependency-only
  critical path.  Zero-slack tasks are the ones worth optimizing.
* :func:`occupancy` — per-worker-lane busy/idle attribution for real
  threaded runs (the measured analogue of the simulator's stall
  attribution).

Everything here is pure post-processing: no runtime hooks, no
overhead on the execution path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..runtime.graph import TaskGraph
from .timeline import TaskEvent

__all__ = ["PathSegment", "CriticalPathReport", "LaneStats",
           "critical_path", "slack", "occupancy"]

#: How a chain segment was released: by a dataflow dependency, by the
#: previous task occupying the same worker lane, or by run start.
BLOCKED_DEPENDENCY = "dependency"
BLOCKED_WORKER = "worker"
BLOCKED_START = "start"


@dataclass(frozen=True)
class PathSegment:
    """One task on the executed critical chain (chronological order)."""

    tid: int
    kind: str
    label: str
    start: float
    end: float
    duration: float
    #: Seconds between the releasing predecessor's end and this task's
    #: start (chain root: seconds after the timeline origin).
    wait: float
    #: tid of the releasing predecessor (None for the chain root).
    blocker: Optional[int]
    #: One of BLOCKED_DEPENDENCY / BLOCKED_WORKER / BLOCKED_START.
    blocked_by: str


@dataclass
class CriticalPathReport:
    """The executed critical chain and its accounting."""

    #: Measured span: latest task end minus the timeline origin.
    makespan: float
    #: Timeline origin (earliest task start) the timestamps are
    #: reported against.
    origin: float
    segments: List[PathSegment]
    #: Summed measured durations of chain tasks.
    task_seconds: float
    #: Summed waits (dependency release gaps + lane contention).
    wait_seconds: float
    #: Chain task seconds by kernel kind, descending.
    per_kind: Dict[str, float]
    #: Chain wait seconds by release cause (dependency/worker/start).
    wait_by_cause: Dict[str, float]

    @property
    def total(self) -> float:
        """``task_seconds + wait_seconds``; telescopes to the makespan."""
        return self.task_seconds + self.wait_seconds

    @property
    def reconciliation(self) -> float:
        """Relative |total - makespan| (0.0 on an empty report).

        The chain construction makes this exact up to float roundoff;
        the bench harness gates it at 1%.
        """
        if self.makespan <= 0.0:
            return 0.0
        return abs(self.total - self.makespan) / self.makespan

    def format(self, max_rows: int = 12) -> str:
        """Human-readable report (the ``repro bench`` / ``repro polar
        --critical-path`` rendering)."""
        from ..bench.tables import format_table
        if not self.segments:
            return "critical path: empty timeline\n"
        lines = [
            f"critical path: {len(self.segments)} task(s), "
            f"{self.task_seconds:.4f} s on task, "
            f"{self.wait_seconds:.4f} s waiting "
            f"({self.total:.4f} s total vs {self.makespan:.4f} s "
            f"makespan, {self.reconciliation * 100:.2f}% off)"]
        rows = [[k, f"{v:.4f}", f"{v / self.makespan * 100:.1f}%"]
                for k, v in sorted(self.per_kind.items(),
                                   key=lambda kv: -kv[1])]
        lines.append(format_table("chain time by kernel kind",
                                  ["kind", "seconds", "of makespan"], rows))
        if any(v > 0.0 for v in self.wait_by_cause.values()):
            rows = [[c, f"{v:.4f}"]
                    for c, v in sorted(self.wait_by_cause.items(),
                                       key=lambda kv: -kv[1]) if v > 0.0]
            lines.append(format_table("chain wait by cause",
                                      ["cause", "seconds"], rows))
        heavy = sorted(self.segments, key=lambda s: -s.duration)[:max_rows]
        rows = [[s.tid, s.kind, s.label or "-", f"{s.duration * 1e3:.2f}",
                 f"{s.wait * 1e3:.2f}", s.blocked_by]
                for s in heavy]
        lines.append(format_table(
            f"heaviest chain segments (top {len(heavy)})",
            ["tid", "kind", "label", "ms", "wait ms", "released by"], rows))
        return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class LaneStats:
    """Busy/idle attribution for one worker lane of a measured run."""

    rank: int
    slot: str
    tasks: int
    busy_seconds: float
    #: Idle seconds over the full measured span (startup + gaps + tail).
    idle_seconds: float
    utilization: float


def _winning_events(events: Iterable[TaskEvent]) -> Dict[int, TaskEvent]:
    """One event per tid (last wins — the executor emits only winning
    attempts, so duplicates only appear in hand-built timelines)."""
    return {e.tid: e for e in events}


def critical_path(graph: TaskGraph,
                  events: Iterable[TaskEvent]) -> CriticalPathReport:
    """Extract the executed critical chain from a measured timeline.

    ``events`` are the measured :class:`TaskEvent`s of one run (e.g.
    ``TimelineSink.tasks`` after a threads-backend execution); tasks of
    ``graph`` without an event (eager prefix, payload-less metadata
    tasks executed before deferral) are treated as instantaneous and
    never appear on the chain.
    """
    ev = _winning_events(events)
    if not ev:
        return CriticalPathReport(0.0, 0.0, [], 0.0, 0.0, {}, {})
    origin = min(e.start for e in ev.values())
    horizon = max(e.end for e in ev.values())

    # Previous task on the same worker lane, by start time.
    lane_prev: Dict[int, Optional[int]] = {}
    by_lane: Dict[Tuple[int, str], List[TaskEvent]] = {}
    for e in ev.values():
        by_lane.setdefault((e.rank, e.slot), []).append(e)
    for lane in by_lane.values():
        lane.sort(key=lambda e: (e.start, e.tid))
        prev = None
        for e in lane:
            lane_prev[e.tid] = prev
            prev = e.tid

    tasks = graph.tasks
    segments: List[PathSegment] = []
    cur = max(ev.values(), key=lambda e: (e.end, e.tid)).tid
    while cur is not None:
        e = ev[cur]
        blocker: Optional[int] = None
        cause = BLOCKED_START
        best_end = -float("inf")
        deps = tasks[cur].deps if cur < len(tasks) else ()
        for d in deps:
            de = ev.get(d)
            if de is not None and de.end > best_end:
                blocker, cause, best_end = d, BLOCKED_DEPENDENCY, de.end
        lp = lane_prev.get(cur)
        if lp is not None and ev[lp].end > best_end:
            blocker, cause, best_end = lp, BLOCKED_WORKER, ev[lp].end
        released = best_end if blocker is not None else origin
        wait = max(0.0, e.start - released)
        segments.append(PathSegment(
            tid=e.tid, kind=e.kind, label=e.label, start=e.start,
            end=e.end, duration=e.duration, wait=wait, blocker=blocker,
            blocked_by=cause))
        cur = blocker
    segments.reverse()

    per_kind: Dict[str, float] = {}
    wait_by_cause: Dict[str, float] = {}
    task_s = wait_s = 0.0
    for s in segments:
        per_kind[s.kind] = per_kind.get(s.kind, 0.0) + s.duration
        wait_by_cause[s.blocked_by] = (
            wait_by_cause.get(s.blocked_by, 0.0) + s.wait)
        task_s += s.duration
        wait_s += s.wait
    return CriticalPathReport(
        makespan=horizon - origin, origin=origin, segments=segments,
        task_seconds=task_s, wait_seconds=wait_s, per_kind=per_kind,
        wait_by_cause=wait_by_cause)


def slack(graph: TaskGraph,
          events: Iterable[TaskEvent]) -> Dict[int, float]:
    """CPM slack per measured task under measured durations.

    Forward/backward pass over the dependency graph with each task's
    measured duration (0.0 for tasks without an event).  Returns
    ``tid -> slack seconds`` for tasks that have an event; zero-slack
    tasks lie on the dependency-only critical path (the lower bound a
    perfect scheduler could reach).
    """
    ev = _winning_events(events)
    tasks = graph.tasks
    n = len(tasks)
    dur = [ev[t.tid].duration if t.tid in ev else 0.0 for t in tasks]
    earliest = [0.0] * n
    for t in tasks:
        start = max((earliest[d] + dur[d] for d in t.deps), default=0.0)
        earliest[t.tid] = start
    horizon = max((earliest[i] + dur[i] for i in range(n)), default=0.0)
    latest = [horizon - dur[i] for i in range(n)]
    for t in reversed(tasks):
        for d in t.deps:
            latest[d] = min(latest[d], latest[t.tid] - dur[d])
    return {tid: max(0.0, latest[tid] - earliest[tid]) for tid in ev
            if tid < n}


def occupancy(events: Iterable[TaskEvent]) -> List[LaneStats]:
    """Per-worker-lane busy/idle attribution for a measured run.

    Idle time is charged over the *global* measured span (earliest
    start to latest end across all lanes), so lanes that start late or
    drain early show the idle their stall represents.
    """
    ev = list(_winning_events(events).values())
    if not ev:
        return []
    origin = min(e.start for e in ev)
    horizon = max(e.end for e in ev)
    span = horizon - origin
    lanes: Dict[Tuple[int, str], List[TaskEvent]] = {}
    for e in ev:
        lanes.setdefault((e.rank, e.slot), []).append(e)
    out: List[LaneStats] = []
    for (rank, slot), lane in sorted(lanes.items()):
        busy = sum(e.duration for e in lane)
        out.append(LaneStats(
            rank=rank, slot=slot, tasks=len(lane),
            busy_seconds=busy,
            idle_seconds=max(0.0, span - busy),
            utilization=busy / span if span > 0.0 else 0.0))
    return out
