"""The perf-trajectory harness behind ``repro bench``.

The paper's claims are performance *trajectories* — makespan, strong
scaling, parallel efficiency across sizes/dtypes/condition numbers —
so this repo records its own: a fixed suite of measured QDWH runs
(sizes x dtypes x kappa x backends {eager, threads, processes} x
workers, plus canonical-fault-plan recovery-overhead cells) whose
results land in schema-versioned ``BENCH_qdwh.json`` /
``BENCH_scaling.json`` at the repo root.  Every future speed claim
(Zolo-PD, mixed precision, GPU offload) lands with its delta against
these files, and CI gates on :func:`compare_bench` so regressions
cannot merge silently.

Design notes:

* The *smoke* suite is a strict subset of the *default* suite, so a CI
  smoke run always overlaps the committed full baseline.
* Measurements run with the TileSan sanitizer off (``sanitize=None``)
  — the harness measures the product, not the debug tooling.
* Repeats: each cell runs ``warmup`` throwaway iterations and then
  ``repeats`` timed ones; the JSON stores every repeat plus the
  median, and :func:`compare_bench` uses the repeat spread as its
  noise estimate.
* JSON is written with sorted keys so bench diffs are stable.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = ["BENCH_SCHEMA", "QDWH_FILE", "SCALING_FILE",
           "BenchCell", "BenchSuite", "BenchRun",
           "default_suite", "smoke_suite", "canonical_fault_plan",
           "env_fingerprint", "run_suite", "write_bench", "load_bench",
           "CellDelta", "CompareReport", "compare_bench"]

#: Schema identifier every BENCH_*.json carries; bump on breaking
#: layout changes so old trajectories stay parseable.
BENCH_SCHEMA = "repro-bench/1"
QDWH_FILE = "BENCH_qdwh.json"
SCALING_FILE = "BENCH_scaling.json"

#: Default regression gate: >25% median slowdown fails.
DEFAULT_THRESHOLD = 0.25
#: Noise classification: a delta within ``max(floor, factor * repeat
#: spread)`` is noise, not a verdict.
NOISE_FLOOR = 0.02
NOISE_FACTOR = 3.0


# ---------------------------------------------------------------------------
# Suite definition
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BenchCell:
    """One measured configuration of the fixed suite."""

    n: int
    nb: int
    dtype: str
    cond: float
    backend: str            # "eager" | "threads" | "processes"
    workers: int
    #: Recovery-overhead cell: run under the canonical fault plan and
    #: report the overhead vs the matching fault-free cell.
    fault_cell: bool = False

    @property
    def key(self) -> str:
        base = (f"qdwh-n{self.n}-nb{self.nb}-{self.dtype}-"
                f"k{self.cond:g}-{self.backend}-w{self.workers}")
        return base + ("-faultplan" if self.fault_cell else "")

    @property
    def clean_key(self) -> str:
        """Key of the fault-free counterpart (== key when clean)."""
        if not self.fault_cell:
            return self.key
        return BenchCell(self.n, self.nb, self.dtype, self.cond,
                         self.backend, self.workers).key


@dataclass
class BenchSuite:
    name: str
    cells: List[BenchCell]
    repeats: int = 3
    warmup: int = 1
    seed: int = 0


def _smoke_cells() -> List[BenchCell]:
    """The CI-sized subset: one small problem across the backends."""
    cells = [BenchCell(96, 32, "float64", 1e4, "eager", 1)]
    for backend in ("threads", "processes"):
        for w in (1, 2, 4):
            cells.append(BenchCell(96, 32, "float64", 1e4, backend, w))
        cells.append(BenchCell(96, 32, "float64", 1e4, backend, 4,
                               fault_cell=True))
    return cells


def smoke_suite(repeats: int = 3, seed: int = 0) -> BenchSuite:
    """Small fixed suite for CI (a strict subset of the default suite)."""
    return BenchSuite("smoke", _smoke_cells(), repeats=repeats, seed=seed)


def default_suite(repeats: int = 3, seed: int = 0) -> BenchSuite:
    """The full fixed suite the committed BENCH_*.json files record.

    Sizes x {dtype, kappa} x backends x workers, the smoke subset
    included verbatim, plus the canonical recovery-overhead cell on
    the largest threaded configuration.
    """
    cells = _smoke_cells()
    for n, nb in ((192, 64), (256, 64)):
        for dtype, cond in (("float64", 1e4), ("float64", 1e16),
                            ("float32", 1e4)):
            cells.append(BenchCell(n, nb, dtype, cond, "eager", 1))
            for backend in ("threads", "processes"):
                for w in (1, 2, 4):
                    cells.append(BenchCell(n, nb, dtype, cond,
                                           backend, w))
    for backend in ("threads", "processes"):
        cells.append(BenchCell(256, 64, "float64", 1e4, backend, 4,
                               fault_cell=True))
    return BenchSuite("default", cells, repeats=repeats, seed=seed)


def canonical_fault_plan(seed: int = 0):
    """The fixed fault plan of the recovery-overhead cell.

    Seeded and versioned with the suite: transients + short worker
    stalls + one corruption budget, the live-fault classes PR 5's
    recovery loop handles, at rates that perturb without dominating.
    """
    from ..resilience import plan_from_spec
    return plan_from_spec(seed=seed, transient_p=0.03, max_attempts=4,
                          stall_p=0.02, stall_seconds=0.01,
                          corrupt_p=0.02)


# ---------------------------------------------------------------------------
# Environment fingerprint
# ---------------------------------------------------------------------------

def machine_calibration(repeats: int = 5) -> float:
    """Best-of-``repeats`` seconds for a fixed serial kernel workload.

    The workload mirrors the QDWH kernel mix (gemm, QR, Cholesky) at a
    fixed size, so its wall clock moves with the effective speed of
    this host *right now* — BLAS pinning, CPU-budget throttling, noisy
    neighbours — but never with changes to this repository's code.
    ``compare_bench`` uses the ratio of two calibrations to excuse a
    uniform machine slowdown between a baseline and a rerun.
    """
    rng = np.random.default_rng(0)
    a = rng.standard_normal((192, 192))
    eye = np.eye(192)
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        for _ in range(6):
            c = a @ a
            np.linalg.qr(c)
            np.linalg.cholesky(c @ c.T / 192.0 + 192.0 * eye)
        best = min(best, time.perf_counter() - t0)
    return best


def env_fingerprint() -> Dict[str, object]:
    """Where a trajectory point was measured (stored in every file)."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=10).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        sha = "unknown"
    return {
        "git_sha": sha,
        "cpu_count": os.cpu_count() or 1,
        "omp_num_threads": os.environ.get("OMP_NUM_THREADS", ""),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "calib_s": round(machine_calibration(), 6),
    }


# ---------------------------------------------------------------------------
# Suite execution
# ---------------------------------------------------------------------------

@dataclass
class BenchRun:
    """One executed suite: the two JSON documents plus per-cell sinks."""

    qdwh: Dict[str, object]
    scaling: Dict[str, object]
    #: cell key -> TimelineSink of the last repeat (threads cells only);
    #: feeds the chrome-trace export and critical-path reporting.
    sinks: Dict[str, object] = field(default_factory=dict)

    def flagship_key(self) -> Optional[str]:
        """The largest fault-free threads cell that captured a sink."""
        best = None
        for key, rec in self.qdwh["cells"].items():
            if (rec["backend"] != "threads" or rec["fault_cell"]
                    or key not in self.sinks):
                continue
            rank = (rec["n"], rec["workers"])
            if best is None or rank > best[0]:
                best = (rank, key)
        return best[1] if best else None


def _run_once(cell: BenchCell, seed: int, sink=None):
    """One measured execution of a cell.

    Returns ``(wall, result, stats, inflight, graph)`` — the graph is
    the Runtime's recorded TaskGraph, kept for critical-path analysis
    of the sink-carrying repeat.
    """
    from ..core.tiled_qdwh import tiled_qdwh
    from ..dist.grid import ProcessGrid
    from ..dist.matrix import DistMatrix
    from ..matrices.generator import generate_matrix
    from ..runtime.executor import Runtime

    a = generate_matrix(cell.n, cond=cell.cond,
                        dtype=np.dtype(cell.dtype), seed=seed)
    faults = recovery = None
    if cell.fault_cell:
        from ..resilience.live import RecoveryPolicy
        faults = canonical_fault_plan(seed)
        recovery = RecoveryPolicy(max_retries=3, scrub_writes=True)
    parallel = cell.backend in ("threads", "processes")
    rt = Runtime(ProcessGrid(1, 1), deferred=parallel,
                 workers=cell.workers, sink=sink, sanitize=None,
                 faults=faults, recovery=recovery)
    d = DistMatrix.from_array(rt, a, cell.nb, name="A")
    t0 = perf_counter()
    res = tiled_qdwh(rt, d, backend=cell.backend, workers=cell.workers)
    wall = perf_counter() - t0
    stats = rt.exec_stats
    leaked = (rt._executor.inflight_attempts
              if rt._executor is not None else 0)
    graph = rt.graph
    rt.close()
    return wall, res, stats, leaked, graph


def _rel_spread(walls: List[float]) -> float:
    med = statistics.median(walls)
    if med <= 0.0:
        return 0.0
    return (max(walls) - min(walls)) / med


def _measure_cell(cell: BenchCell, suite: BenchSuite,
                  progress: Optional[Callable[[str], None]]):
    """Warmup + timed repeats of one cell; sink attached on the last
    repeat only, so the captured timeline covers exactly one run."""
    from .timeline import TimelineSink

    for _ in range(suite.warmup):
        _run_once(cell, suite.seed)
    walls: List[float] = []
    res = stats = sink = graph = None
    leaked = 0
    for rep in range(suite.repeats):
        last = rep == suite.repeats - 1
        sink = TimelineSink() \
            if (last and cell.backend in ("threads", "processes")) \
            else None
        wall, res, stats, leaked, graph = _run_once(
            cell, suite.seed, sink=sink)
        walls.append(wall)
    med = statistics.median(walls)
    rec: Dict[str, object] = {
        "n": cell.n, "nb": cell.nb, "dtype": cell.dtype,
        "cond": cell.cond, "backend": cell.backend,
        "workers": cell.workers, "fault_cell": cell.fault_cell,
        "repeats_s": [round(w, 6) for w in walls],
        "makespan_s": round(med, 6),
        "min_s": round(min(walls), 6),
        "max_s": round(max(walls), 6),
        "rel_spread": round(_rel_spread(walls), 6),
        "iterations": res.iterations,
        "converged": bool(res.converged),
    }
    if stats is not None:
        rec.update({
            "tasks": stats.tasks_run,
            "busy_s": round(stats.busy_seconds, 6),
            "cpu_s": round(stats.cpu_seconds, 6),
            "utilization": round(stats.utilization, 6),
            "peak_rss_bytes": int(stats.peak_rss_bytes),
            "per_kind_s": {k: round(v, 6) for k, v in
                           sorted(stats.per_kind_seconds.items())},
            "inflight_attempts": leaked,
        })
        if stats.comm_messages:
            rec["comm_messages"] = stats.comm_messages
            rec["comm_bytes"] = stats.comm_bytes
        r = stats.recovery
        if cell.fault_cell:
            rec["recovery"] = {
                "transient_failures": r.transient_failures,
                "retried_tasks": r.retried_tasks,
                "injected_stalls": r.injected_stalls,
                "corrupted_tiles": r.corrupted_tiles,
                "speculative_duplicates": r.speculative_duplicates,
                "reexecution_seconds": round(r.reexecution_seconds, 6),
            }
    if sink is not None and len(sink) and graph is not None:
        from .critical_path import critical_path
        cp = critical_path(graph, sink.tasks)
        rec["critical_path"] = {
            "task_s": round(cp.task_seconds, 6),
            "wait_s": round(cp.wait_seconds, 6),
            "makespan_s": round(cp.makespan, 6),
            "chain_tasks": len(cp.segments),
            "reconciliation": round(cp.reconciliation, 6),
            "per_kind_s": {k: round(v, 6)
                           for k, v in sorted(cp.per_kind.items())},
        }
    if progress is not None:
        progress(f"  {cell.key}: {med:.4f} s median over "
                 f"{suite.repeats} repeat(s)")
    return rec, sink


def run_suite(suite: BenchSuite,
              progress: Optional[Callable[[str], None]] = None
              ) -> BenchRun:
    """Execute every cell of ``suite`` and assemble the two documents."""
    cells: Dict[str, Dict[str, object]] = {}
    sinks: Dict[str, object] = {}
    for cell in suite.cells:
        rec, sink = _measure_cell(cell, suite, progress)
        cells[cell.key] = rec
        if sink is not None and len(sink):
            sinks[cell.key] = sink
    # Recovery overhead: fault cells vs their fault-free counterpart.
    for cell in suite.cells:
        if not cell.fault_cell:
            continue
        clean = cells.get(cell.clean_key)
        if clean and clean["makespan_s"] > 0.0:
            cells[cell.key]["overhead_vs_clean"] = round(
                cells[cell.key]["makespan_s"] / clean["makespan_s"], 6)

    env = env_fingerprint()
    created = int(time.time())
    qdwh = {
        "schema": BENCH_SCHEMA,
        "topic": "qdwh",
        "suite": suite.name,
        "repeats": suite.repeats,
        "warmup": suite.warmup,
        "seed": suite.seed,
        "created_unix": created,
        "env": env,
        "cells": cells,
    }
    scaling = {
        "schema": BENCH_SCHEMA,
        "topic": "scaling",
        "suite": suite.name,
        "created_unix": created,
        "env": env,
        "series": _scaling_series(cells),
    }
    return BenchRun(qdwh=qdwh, scaling=scaling, sinks=sinks)


def _scaling_series(cells: Dict[str, Dict[str, object]]
                    ) -> List[Dict[str, object]]:
    """Speedup/efficiency per (n, nb, dtype, cond, backend).

    One row per parallel backend, so threads and processes efficiency
    for the same problem sit side by side (adjacent rows in the sorted
    series) against the shared eager baseline.
    """
    from ..perf.report import parallel_efficiency

    groups: Dict[Tuple, Dict[int, float]] = {}
    eager: Dict[Tuple, float] = {}
    for rec in cells.values():
        if rec["fault_cell"]:
            continue
        g = (rec["n"], rec["nb"], rec["dtype"], rec["cond"])
        if rec["backend"] in ("threads", "processes"):
            groups.setdefault(g + (rec["backend"],), {})[
                rec["workers"]] = rec["makespan_s"]
        elif rec["backend"] == "eager":
            eager[g] = rec["makespan_s"]
    series: List[Dict[str, object]] = []
    for g in sorted(groups):
        walls = groups[g]
        eff = parallel_efficiency(walls)
        base = walls.get(1, walls[min(walls)])
        row: Dict[str, object] = {
            "n": g[0], "nb": g[1], "dtype": g[2], "cond": g[3],
            "backend": g[4],
            "walls_s": {str(w): round(t, 6)
                        for w, t in sorted(walls.items())},
            "speedup": {str(w): round(base / t, 6) if t > 0.0 else 0.0
                        for w, t in sorted(walls.items())},
            "efficiency": {str(w): round(e, 6)
                           for w, e in sorted(eff.items())},
        }
        if g[:4] in eager:
            row["eager_s"] = eager[g[:4]]
        series.append(row)
    return series


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------

def write_bench(run: BenchRun, out_dir: str = ".") -> List[str]:
    """Write ``BENCH_qdwh.json`` + ``BENCH_scaling.json`` under
    ``out_dir`` (sorted keys — diffs stay stable); returns the paths."""
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for name, doc in ((QDWH_FILE, run.qdwh), (SCALING_FILE, run.scaling)):
        path = os.path.join(out_dir, name)
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths.append(path)
    return paths


def load_bench(path: str) -> Dict[str, object]:
    """Load and schema-check one BENCH_*.json."""
    with open(path) as fh:
        doc = json.load(fh)
    schema = doc.get("schema", "")
    if not str(schema).startswith("repro-bench/"):
        raise ValueError(
            f"{path}: not a repro bench file (schema={schema!r})")
    return doc


# ---------------------------------------------------------------------------
# Comparison / regression gating
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CellDelta:
    """Old-vs-new classification of one suite cell."""

    key: str
    old_s: float
    new_s: float
    #: Relative change: ``new/old - 1`` (positive = slower).
    delta: float
    #: The gate this cell was judged against (threshold vs noise).
    gate: float
    verdict: str            # "improvement" | "noise" | "regression"


@dataclass
class CompareReport:
    deltas: List[CellDelta]
    missing: List[str]      # in OLD only
    added: List[str]        # in NEW only
    threshold: float
    env_changed: bool
    #: Calibration ratio new/old (clamped to >= 1): how much slower the
    #: new host measured on the fixed kernel workload.  Deltas are
    #: normalized by it, so a uniform machine slowdown is not a
    #: regression.  1.0 when either file lacks a calibration.
    drift: float = 1.0

    @property
    def regressions(self) -> List[CellDelta]:
        return [d for d in self.deltas if d.verdict == "regression"]

    @property
    def improvements(self) -> List[CellDelta]:
        return [d for d in self.deltas if d.verdict == "improvement"]

    @property
    def ok(self) -> bool:
        """Gate: no regression, and the files actually overlapped."""
        return bool(self.deltas) and not self.regressions

    def format(self) -> str:
        from ..bench.tables import format_table
        if not self.deltas:
            return ("bench compare: no overlapping cells between the two "
                    "files (different suites?) — nothing to gate\n")
        rows = [[d.key, f"{d.old_s:.4f}", f"{d.new_s:.4f}",
                 f"{d.delta * 100:+.1f}%", f"{d.gate * 100:.0f}%",
                 d.verdict]
                for d in sorted(self.deltas, key=lambda d: -d.delta)]
        out = [format_table(
            "bench compare (makespan medians)",
            ["cell", "old s", "new s", "delta", "gate", "verdict"], rows)]
        if self.env_changed:
            out.append("note: environment fingerprints differ "
                       "(different host/BLAS pinning); the gate was "
                       "widened 2x\n")
        if self.drift > 1.05:
            out.append(f"note: host calibration ran {self.drift:.2f}x "
                       "slower than the baseline's; deltas are "
                       "normalized by it\n")
        if self.missing:
            out.append(f"cells only in OLD: {', '.join(self.missing)}\n")
        if self.added:
            out.append(f"cells only in NEW: {', '.join(self.added)}\n")
        n_reg = len(self.regressions)
        n_imp = len(self.improvements)
        out.append(f"{len(self.deltas)} cell(s) compared: "
                   f"{n_imp} improvement(s), "
                   f"{len(self.deltas) - n_imp - n_reg} within noise, "
                   f"{n_reg} regression(s) -> "
                   f"{'OK' if self.ok else 'FAIL'}\n")
        return "".join(out)


def _env_changed(old: Dict, new: Dict) -> bool:
    eo, en = old.get("env", {}), new.get("env", {})
    return any(eo.get(k) != en.get(k)
               for k in ("cpu_count", "platform", "machine",
                         "omp_num_threads"))


def compare_bench(old: Dict[str, object], new: Dict[str, object], *,
                  threshold: float = DEFAULT_THRESHOLD,
                  noise_floor: float = NOISE_FLOOR,
                  noise_factor: float = NOISE_FACTOR) -> CompareReport:
    """Classify NEW against OLD cell by cell.

    A cell's delta is judged against ``gate = max(threshold, noise)``
    where ``noise = max(noise_floor, noise_factor * repeat spread)`` —
    a delta beyond the gate is a regression (slower) or improvement
    (faster); within it, noise.  When the environment fingerprints
    disagree on host-shape keys the gate doubles: absolute wall clocks
    from different machines only support coarse conclusions.

    When both files carry a ``calib_s`` fingerprint (the fixed kernel
    workload of :func:`machine_calibration`), deltas are divided by the
    calibration ratio — one-sided, clamped to ``[1, 4]`` — so a host
    that got uniformly slower between runs (CPU throttling, noisy
    neighbours) does not read as a code regression, while a faster
    host never inflates deltas.
    """
    oc: Dict[str, Dict] = old.get("cells", {})
    nc: Dict[str, Dict] = new.get("cells", {})
    env_changed = _env_changed(old, new)
    scale = 2.0 if env_changed else 1.0
    ocal = float((old.get("env") or {}).get("calib_s") or 0.0)
    ncal = float((new.get("env") or {}).get("calib_s") or 0.0)
    drift = 1.0
    if ocal > 0.0 and ncal > 0.0:
        drift = min(4.0, max(1.0, ncal / ocal))
    deltas: List[CellDelta] = []
    for key in sorted(set(oc) & set(nc)):
        o, n = oc[key], nc[key]
        old_s, new_s = float(o["makespan_s"]), float(n["makespan_s"])
        if old_s <= 0.0:
            continue
        delta = new_s / (old_s * drift) - 1.0
        noise = max(noise_floor,
                    noise_factor * max(float(o.get("rel_spread", 0.0)),
                                       float(n.get("rel_spread", 0.0))))
        gate = max(threshold, noise) * scale
        if delta > gate:
            verdict = "regression"
        elif delta < -gate:
            verdict = "improvement"
        else:
            verdict = "noise"
        deltas.append(CellDelta(key=key, old_s=old_s, new_s=new_s,
                                delta=delta, gate=gate, verdict=verdict))
    return CompareReport(
        deltas=deltas,
        missing=sorted(set(oc) - set(nc)),
        added=sorted(set(nc) - set(oc)),
        threshold=threshold,
        env_changed=env_changed,
        drift=drift)
