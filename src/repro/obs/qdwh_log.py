"""Per-iteration QDWH telemetry (the paper's Table-1 analogue).

An :class:`IterationLog` is passed opt-in to :func:`repro.core.qdwh`,
:func:`repro.core.tiled_qdwh.tiled_qdwh`, or :func:`repro.core.polar`;
the driver appends one :class:`IterationRecord` per iteration —
variant taken (QR vs Cholesky), dynamical weights, convergence
criterion value, the lower-bound trajectory (hence an estimated
condition number of the iterate), and cumulative flops — without
changing the driver's signature contract (same returns, zero records
when no log is attached).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from .. import flops as F

VARIANT_QR = "qr"
VARIANT_CHOL = "chol"


@dataclass(frozen=True)
class IterationRecord:
    """Telemetry of one QDWH iteration."""

    k: int               # iteration index, 1-based
    variant: str         # VARIANT_QR | VARIANT_CHOL
    a: float             # dynamical weights of this iteration
    b: float
    c: float
    L: float             # lower bound entering the iteration
    L_next: float        # lower bound after the iteration
    conv: float          # ||A_k - A_{k-1}||_F (nan if not measured)
    flops: float         # flops of this iteration (paper's formulas)
    flops_total: float   # cumulative flops through this iteration

    @property
    def cond_est(self) -> float:
        """Estimated cond_2 of the iterate entering this iteration.

        The scaled iterate has singular values in [L, 1], so 1/L bounds
        its condition number from above.
        """
        return 1.0 / self.L if self.L > 0.0 else math.inf


class IterationLog:
    """Collects :class:`IterationRecord` objects from a QDWH driver."""

    def __init__(self) -> None:
        self.records: List[IterationRecord] = []
        #: Matrix shape, filled by the driver (flops accounting).
        self.m: int = 0
        self.n: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def it_qr(self) -> int:
        return sum(1 for r in self.records if r.variant == VARIANT_QR)

    @property
    def it_chol(self) -> int:
        return sum(1 for r in self.records if r.variant == VARIANT_CHOL)

    @property
    def total_flops(self) -> float:
        return self.records[-1].flops_total if self.records else 0.0

    def record(self, *, variant: str, a: float, b: float, c: float,
               L: float, L_next: float, conv: float = math.nan) -> None:
        """Append one iteration (drivers call this; k auto-increments)."""
        flops = (F.qdwh_qr_iteration(self.m, self.n)
                 if variant == VARIANT_QR
                 else F.qdwh_chol_iteration(self.m, self.n))
        self.records.append(IterationRecord(
            k=len(self.records) + 1, variant=variant, a=a, b=b, c=c,
            L=L, L_next=L_next, conv=conv, flops=flops,
            flops_total=self.total_flops + flops))

    def as_dicts(self) -> List[Dict[str, float]]:
        """JSON-friendly rows."""
        return [{
            "k": r.k, "variant": r.variant, "a": r.a, "b": r.b, "c": r.c,
            "L": r.L, "L_next": r.L_next, "conv": r.conv,
            "cond_est": r.cond_est, "flops": r.flops,
            "flops_total": r.flops_total,
        } for r in self.records]

    def table(self) -> str:
        """Render the log as the paper's per-iteration table."""
        head = (f"QDWH iterations ({self.m} x {self.n}): "
                f"{self.it_qr} QR + {self.it_chol} Cholesky")
        rows = [head,
                "  k  | var  |          a |          b |          c |"
                "      conv |  cond est |  Gflop cum",
                "-" * 92]
        for r in self.records:
            conv = f"{r.conv:10.3e}" if math.isfinite(r.conv) else "       n/a"
            rows.append(
                f"  {r.k:<3}| {r.variant:<5}| {r.a:10.4g} | {r.b:10.4g} | "
                f"{r.c:10.4g} |{conv} | {r.cond_est:9.3e} | "
                f"{r.flops_total / 1e9:10.2f}")
        return "\n".join(rows) + "\n"
