"""Observability: task timelines, trace exporters, metrics, telemetry.

The subsystem every performance claim in this repo reports through:

* :mod:`.timeline` — :class:`TraceSink` / :class:`TimelineSink`: the
  scheduler's structured event stream (tasks, transfers, barriers,
  lookahead-gate stalls).  Opt-in; zero overhead when detached.
* :mod:`.export` — Chrome ``trace_event`` JSON (Perfetto /
  ``chrome://tracing``) and a terminal ASCII Gantt, plus the shared
  post-mortem aggregates (kernel breakdown, rank utilization).
* :mod:`.metrics` — a tiny process-wide registry (Counter / Gauge /
  Histogram) the scheduler, eager runtime, and comm layer publish to.
* :mod:`.qdwh_log` — per-iteration QDWH telemetry (variant, weights,
  convergence, condition estimate, flops).
"""

from .export import (
    ascii_gantt,
    chrome_trace,
    kernel_breakdown,
    rank_utilization,
    write_chrome_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    get_registry,
    reset_metrics,
)
from .qdwh_log import IterationLog, IterationRecord
from .timeline import (
    FAULT_CHECKPOINT,
    FAULT_CRASH,
    FAULT_REPLAY,
    FAULT_SPECULATE,
    FAULT_TRANSIENT,
    STALL_DEPENDENCY,
    STALL_GATE,
    STALL_LINK,
    BarrierEvent,
    FaultEvent,
    SanitizerEvent,
    StallEvent,
    TaskEvent,
    TimelineSink,
    TraceSink,
    TransferEvent,
)

__all__ = [
    "ascii_gantt",
    "chrome_trace",
    "kernel_breakdown",
    "rank_utilization",
    "write_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "get_registry",
    "reset_metrics",
    "IterationLog",
    "IterationRecord",
    "FAULT_CHECKPOINT",
    "FAULT_CRASH",
    "FAULT_REPLAY",
    "FAULT_SPECULATE",
    "FAULT_TRANSIENT",
    "FaultEvent",
    "STALL_DEPENDENCY",
    "STALL_GATE",
    "STALL_LINK",
    "BarrierEvent",
    "SanitizerEvent",
    "StallEvent",
    "TaskEvent",
    "TimelineSink",
    "TraceSink",
    "TransferEvent",
]
