"""Observability: task timelines, trace exporters, metrics, telemetry.

The subsystem every performance claim in this repo reports through:

* :mod:`.timeline` — :class:`TraceSink` / :class:`TimelineSink`: the
  scheduler's structured event stream (tasks, transfers, barriers,
  lookahead-gate stalls).  Opt-in; zero overhead when detached.
* :mod:`.export` — Chrome ``trace_event`` JSON (Perfetto /
  ``chrome://tracing``) and a terminal ASCII Gantt, plus the shared
  post-mortem aggregates (kernel breakdown, rank utilization).
* :mod:`.metrics` — a tiny process-wide registry (Counter / Gauge /
  Histogram) the scheduler, eager runtime, and comm layer publish to.
* :mod:`.qdwh_log` — per-iteration QDWH telemetry (variant, weights,
  convergence, condition estimate, flops).
* :mod:`.critical_path` — profiler views over *measured* runs:
  executed critical chain, CPM slack, worker-lane occupancy.
* :mod:`.bench` — the ``repro bench`` perf-trajectory harness:
  fixed suite, versioned ``BENCH_*.json``, regression compare.
"""

from .bench import (
    BENCH_SCHEMA,
    BenchCell,
    BenchSuite,
    compare_bench,
    default_suite,
    env_fingerprint,
    load_bench,
    machine_calibration,
    run_suite,
    smoke_suite,
    write_bench,
)
from .critical_path import (
    CriticalPathReport,
    LaneStats,
    PathSegment,
    critical_path,
    occupancy,
    slack,
)
from .export import (
    ascii_gantt,
    chrome_trace,
    kernel_breakdown,
    rank_utilization,
    write_chrome_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    get_registry,
    reset_metrics,
)
from .qdwh_log import IterationLog, IterationRecord
from .timeline import (
    FAULT_CHECKPOINT,
    FAULT_CRASH,
    FAULT_REPLAY,
    FAULT_SPECULATE,
    FAULT_TRANSIENT,
    STALL_DEPENDENCY,
    STALL_GATE,
    STALL_LINK,
    AnalysisEvent,
    BarrierEvent,
    FaultEvent,
    SanitizerEvent,
    StallEvent,
    TaskEvent,
    TimelineSink,
    TraceSink,
    TransferEvent,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchCell",
    "BenchSuite",
    "compare_bench",
    "default_suite",
    "env_fingerprint",
    "load_bench",
    "machine_calibration",
    "run_suite",
    "smoke_suite",
    "write_bench",
    "CriticalPathReport",
    "LaneStats",
    "PathSegment",
    "critical_path",
    "occupancy",
    "slack",
    "ascii_gantt",
    "chrome_trace",
    "kernel_breakdown",
    "rank_utilization",
    "write_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "get_registry",
    "reset_metrics",
    "IterationLog",
    "IterationRecord",
    "FAULT_CHECKPOINT",
    "FAULT_CRASH",
    "FAULT_REPLAY",
    "FAULT_SPECULATE",
    "FAULT_TRANSIENT",
    "FaultEvent",
    "STALL_DEPENDENCY",
    "STALL_GATE",
    "STALL_LINK",
    "AnalysisEvent",
    "BarrierEvent",
    "SanitizerEvent",
    "StallEvent",
    "TaskEvent",
    "TimelineSink",
    "TraceSink",
    "TransferEvent",
]
