"""A tiny process-wide metrics registry (Prometheus-flavoured).

Three instrument types — :class:`Counter` (monotone adds),
:class:`Gauge` (last value wins), :class:`Histogram` (fixed buckets) —
registered by name in a :class:`Registry`.  The scheduler, the eager
runtime, and the communication layer publish here; ``snapshot()``
turns the whole registry into a JSON-friendly dict (the CLI's
``--metrics-json``).

The default registry is process-wide so independent layers aggregate
into one view without plumbing a handle through every call; tests and
repeated campaigns call :func:`reset_metrics` between runs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Union

Number = Union[int, float]

#: Default histogram buckets: task/stall durations in seconds, log-ish.
DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc({amount}))")
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """Point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Fixed-bucket histogram: counts of observations <= each bound.

    ``counts[i]`` counts observations in ``(bounds[i-1], bounds[i]]``;
    the final slot is the +Inf overflow bucket.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count")

    def __init__(self, name: str,
                 buckets: Sequence[Number] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, "
                             "non-empty sequence")
        self.name = name
        self.bounds: List[float] = [float(b) for b in buckets]
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: Number) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def quantile(self, q: Number) -> float:
        """Estimate the q-quantile (q in [0, 1]) from the buckets.

        Piecewise-linear interpolation within the covering bucket —
        the standard Prometheus ``histogram_quantile`` estimate, so
        the error is bounded by the bucket width.  The overflow bucket
        has no upper bound; observations landing there clamp to the
        largest finite bound.  Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if cum + c >= target:
                if i == len(self.bounds):      # +Inf overflow bucket
                    return self.bounds[-1]
                lo = self.bounds[i - 1] if i > 0 else min(
                    0.0, self.bounds[0])
                hi = self.bounds[i]
                return lo + (hi - lo) * max(0.0, target - cum) / c
            cum += c
        return self.bounds[-1]

    def summary(self) -> Dict[str, float]:
        """count/sum/mean plus the p50/p95/p99 bucket estimates."""
        mean = self.sum / self.count if self.count else 0.0
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def as_dict(self) -> Dict[str, object]:
        buckets = {f"le_{b:g}": c for b, c in zip(self.bounds, self.counts)}
        buckets["le_inf"] = self.counts[-1]
        d: Dict[str, object] = {"buckets": buckets, "sum": self.sum,
                                "count": self.count}
        d.update((k, v) for k, v in self.summary().items()
                 if k in ("p50", "p95", "p99"))
        return d


class Registry:
    """Name -> instrument table with get-or-create semantics."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._check_free(name, self._counters)
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._check_free(name, self._gauges)
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str,
                  buckets: Sequence[Number] = DEFAULT_BUCKETS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._check_free(name, self._histograms)
            h = self._histograms[name] = Histogram(name, buckets)
        return h

    def _check_free(self, name: str, own: Dict) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not own and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a different type")

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-friendly view of every registered instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.as_dict()
                           for n, h in sorted(self._histograms.items())},
        }

    def reset(self) -> None:
        """Zero every instrument (registrations are kept)."""
        for table in (self._counters, self._gauges, self._histograms):
            for inst in table.values():
                inst.reset()


#: The process-wide default registry.
_DEFAULT = Registry()


def get_registry() -> Registry:
    """The process-wide registry every built-in instrument publishes to."""
    return _DEFAULT


def reset_metrics(registry: Optional[Registry] = None) -> None:
    """Zero the (default) registry between runs/campaigns."""
    (registry or _DEFAULT).reset()
