"""Exporters and aggregate views over captured timelines.

Two renderings of a :class:`~repro.obs.timeline.TimelineSink`:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON format, loadable in Perfetto or
  ``chrome://tracing``: one "process" per rank, one "thread" per
  execution slot (core / GPU), complete ("X") events per task with the
  kernel kind as category, counter tracks for in-flight transfers, and
  instant events for barriers.
* :func:`ascii_gantt` — a terminal Gantt/utilization strip (rank ×
  time, kernel-kind letters) so a trace is inspectable without leaving
  the shell.

This module is also the single source of truth for the post-mortem
aggregates (:func:`kernel_breakdown`, :func:`rank_utilization`):
:mod:`repro.runtime.trace` and :mod:`repro.perf.report` delegate here.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .timeline import NET_FAULT_KINDS, TimelineSink

#: Chrome-trace thread ids: cpu/thr slot i -> i, gpu slot i -> base + i.
GPU_TID_BASE = 1000


# ---------------------------------------------------------------------------
# Aggregates (shared by runtime.trace and perf.report)
# ---------------------------------------------------------------------------

def _kind_busy(source) -> Dict[str, float]:
    """per-kind busy seconds from a ScheduleResult or TimelineSink."""
    pk = source.per_kind_busy
    return pk() if callable(pk) else pk


def kernel_breakdown(source) -> List[Tuple[str, float, float]]:
    """(kind, busy seconds, share of total busy time), sorted descending.

    ``source`` is a ``ScheduleResult`` or a :class:`TimelineSink`.
    """
    busy = _kind_busy(source)
    total = sum(busy.values())
    if total == 0.0:
        return []
    rows = [(k, v, v / total) for k, v in busy.items()]
    rows.sort(key=lambda r: -r[1])
    return rows


def rank_utilization(result, normalize: bool = True) -> Dict[str, float]:
    """min/mean/max busy fraction over ranks.

    With ``normalize=True`` (default) the per-rank busy-slot-seconds
    are divided by ``makespan * slots_per_rank``, so the fraction is a
    true utilization in [0, 1].  ``normalize=False`` restores the
    legacy view (busy seconds over makespan only), which exceeds 1 for
    multi-slot ranks.
    """
    if result.makespan == 0.0 or not result.per_rank_busy:
        return {"min": 0.0, "mean": 0.0, "max": 0.0}
    denom = result.makespan
    if normalize:
        denom *= max(getattr(result, "slots_per_rank", 1) or 1, 1)
    fracs = [b / denom for b in result.per_rank_busy]
    return {
        "min": min(fracs),
        "mean": sum(fracs) / len(fracs),
        "max": max(fracs),
    }


# ---------------------------------------------------------------------------
# Chrome trace_event JSON
# ---------------------------------------------------------------------------

def _slot_tid(slot: str) -> int:
    """Stable thread id for a slot label ("cpu3" -> 3, "gpu1" -> 1001,
    "thr2" -> 2 for the threaded backend's worker lanes)."""
    if slot.startswith("gpu"):
        return GPU_TID_BASE + int(slot[3:] or 0)
    if slot.startswith(("cpu", "thr")):
        return int(slot[3:] or 0)
    # Custom sinks' labels: stable across processes (hash() is not).
    return sum(ord(c) * 31 ** i for i, c in enumerate(slot)) % GPU_TID_BASE

def chrome_trace(timeline: TimelineSink) -> Dict[str, object]:
    """Render a timeline as a Chrome ``trace_event`` JSON object.

    Timestamps are microseconds (the format's unit).  Every task event
    carries ``ph``/``ts``/``dur``/``pid``/``tid``; ``dur`` is the
    scheduler-charged duration, so summed per-pid durations equal
    ``ScheduleResult.per_rank_busy`` exactly.
    """
    events: List[Dict[str, object]] = []
    ranks = sorted({t.rank for t in timeline.tasks}
                   | {x.src for x in timeline.transfers}
                   | {x.dst for x in timeline.transfers})
    sched_pid = (max(ranks) + 1) if ranks else 0

    for rank in ranks:
        events.append({"name": "process_name", "ph": "M", "pid": rank,
                       "args": {"name": f"rank {rank}"}})
    events.append({"name": "process_name", "ph": "M", "pid": sched_pid,
                   "args": {"name": "scheduler"}})
    for rank, slot in timeline.slots():
        events.append({"name": "thread_name", "ph": "M", "pid": rank,
                       "tid": _slot_tid(slot), "args": {"name": slot}})
    # Label the scheduler-process rows Perfetto would otherwise show as
    # bare tids; only rows that actually carry events get a name, so
    # traces without faults/stalls are unchanged.
    all_faults = list(getattr(timeline, "faults", ()))
    net_faults = [f for f in all_faults if f.kind in NET_FAULT_KINDS]
    other_faults = [f for f in all_faults if f.kind not in NET_FAULT_KINDS]
    for tid, name, stream in (
            (0, "barriers", timeline.barriers),
            (1, "stalls", timeline.stalls),
            (2, "faults / health", other_faults),
            (3, "sanitizer", getattr(timeline, "sanitizer", ())),
            (4, "distsan", getattr(timeline, "analysis", ())),
            (5, "chaos / net", net_faults)):
        if stream:
            events.append({"name": "thread_name", "ph": "M",
                           "pid": sched_pid, "tid": tid,
                           "args": {"name": name}})

    for t in timeline.tasks:
        args: Dict[str, object] = {"tid": t.tid, "phase": t.phase,
                                   "flops": t.flops}
        if getattr(t, "measured", False):
            # Only measured runs carry the flag, so simulated traces
            # stay byte-identical to their pre-measured-backend form.
            args["measured"] = True
            if getattr(t, "cpu", 0.0) > 0.0:
                args["cpu_ms"] = t.cpu * 1e3
        events.append({
            "name": t.label or t.kind,
            "cat": t.kind,
            "ph": "X",
            "ts": t.start * 1e6,
            "dur": t.duration * 1e6,
            "pid": t.rank,
            "tid": _slot_tid(t.slot),
            "args": args,
        })

    # In-flight transfer counters: one track, one series per link leg.
    deltas: List[Tuple[float, int, str]] = []
    for x in timeline.transfers:
        deltas.append((x.start, +1, x.leg))
        deltas.append((x.end, -1, x.leg))
    deltas.sort(key=lambda d: (d[0], -d[1]))
    inflight: Dict[str, int] = {}
    for ts, step, leg in deltas:
        inflight[leg] = inflight.get(leg, 0) + step
        events.append({
            "name": "inflight transfers",
            "ph": "C",
            "ts": ts * 1e6,
            "pid": sched_pid,
            "args": dict(sorted(inflight.items())),
        })

    for b in timeline.barriers:
        events.append({
            "name": f"barrier phase {b.phase}",
            "cat": "barrier",
            "ph": "X",
            "ts": b.time * 1e6,
            "dur": max((b.until - b.time) * 1e6, 0.0),
            "pid": sched_pid,
            "tid": 0,
        })

    for s in timeline.stalls:
        events.append({
            "name": s.cause,
            "cat": "stall",
            "ph": "X",
            "ts": s.start * 1e6,
            "dur": (s.end - s.start) * 1e6,
            "pid": sched_pid,
            "tid": 1,
            "args": {"tid": s.tid},
        })

    # Fault/recovery actions as instant events on the scheduler row;
    # network-chaos kinds land on their own lane (tid 5) so a trace of
    # a chaotic run separates injected wire trouble from recovery.
    for f in all_faults:
        chaotic = f.kind in NET_FAULT_KINDS
        events.append({
            "name": f"{f.kind} r{f.rank}",
            "cat": "chaos" if chaotic else "fault",
            "ph": "i",
            "s": "g",
            "ts": f.time * 1e6,
            "pid": sched_pid,
            "tid": 5 if chaotic else 2,
            "args": {"tid": f.tid, "kind": f.kind, "rank": f.rank,
                     "detail": f.detail},
        })

    # TileSan footprint findings as instants on their own row.
    for s in getattr(timeline, "sanitizer", ()):
        events.append({
            "name": f"{s.kind} t{s.tid}",
            "cat": "sanitizer",
            "ph": "i",
            "s": "g",
            "ts": s.time * 1e6,
            "pid": sched_pid,
            "tid": 3,
            "args": {"tid": s.tid, "kind": s.kind,
                     "task_kind": s.task_kind, "label": s.label,
                     "ref": list(s.ref), "detail": s.detail},
        })

    # DistSan findings (model checker / HB / protocol) as instants.
    for a in getattr(timeline, "analysis", ()):
        events.append({
            "name": f"{a.checker}:{a.kind}",
            "cat": "distsan",
            "ph": "i",
            "s": "g",
            "ts": a.time * 1e6,
            "pid": sched_pid,
            "tid": 4,
            "args": {"tid": a.tid, "checker": a.checker,
                     "kind": a.kind, "detail": a.detail},
        })

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(timeline: TimelineSink, path: str) -> str:
    """Write :func:`chrome_trace` output to ``path``; returns the path."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(timeline), fh)
    return path


# ---------------------------------------------------------------------------
# Terminal Gantt
# ---------------------------------------------------------------------------

def _kind_symbols(kinds: List[str]) -> Dict[str, str]:
    """Assign each kind a distinct single letter (first free char)."""
    symbols: Dict[str, str] = {}
    used: set = set()
    for kind in sorted(kinds):
        chosen = None
        for ch in kind + kind.upper():
            if ch not in used:
                chosen = ch
                break
        if chosen is None:  # > 2x alphabet collisions: degenerate fallback
            chosen = "?"
        symbols[kind] = chosen
        used.add(chosen)
    return symbols


def ascii_gantt(timeline: TimelineSink, width: int = 72,
                max_ranks: int = 16) -> str:
    """Terminal Gantt of a captured timeline.

    One heat-strip row per rank: each column is a ``span/width`` time
    bucket showing the symbol of the kernel kind that occupied most of
    that bucket (``.`` = idle); the right margin shows the rank's true
    utilization (busy-slot-seconds over ``span * slots``).  A legend
    maps symbols back to kernel kinds.
    """
    span = timeline.span
    if not timeline.tasks or span == 0.0:
        return "gantt: empty timeline\n"
    ranks = sorted({t.rank for t in timeline.tasks})
    shown = ranks[:max_ranks]
    symbols = _kind_symbols(sorted({t.kind for t in timeline.tasks}))
    slots_of: Dict[int, set] = {r: set() for r in ranks}
    for t in timeline.tasks:
        slots_of[t.rank].add(t.slot)

    # occupancy[rank][bucket] -> {kind: seconds}
    occ: Dict[int, List[Dict[str, float]]] = {
        r: [{} for _ in range(width)] for r in shown}
    busy = {r: 0.0 for r in ranks}
    for t in timeline.tasks:
        busy[t.rank] += t.duration
        if t.rank not in occ:
            continue
        b0 = min(int(t.start / span * width), width - 1)
        b1 = min(int(t.end / span * width), width - 1)
        row = occ[t.rank]
        for b in range(b0, b1 + 1):
            lo = max(t.start, b * span / width)
            hi = min(t.end, (b + 1) * span / width)
            if hi > lo:
                row[b][t.kind] = row[b].get(t.kind, 0.0) + hi - lo

    lines = [f"gantt: {span:.3g} s captured span, "
             f"{len(shown)} of {len(ranks)} ranks, "
             f"{len(timeline.tasks)} tasks"]
    for rank in shown:
        strip = []
        for bucket in occ[rank]:
            if not bucket:
                strip.append(".")
            else:
                strip.append(symbols[max(bucket, key=bucket.get)])
        util = busy[rank] / (span * max(len(slots_of[rank]), 1))
        lines.append(f"r{rank:<4}|{''.join(strip)}| {util * 100:5.1f}%")
    legend = "  ".join(f"{sym}={kind}"
                       for kind, sym in sorted(symbols.items()))
    lines.append(f"legend: {legend}  .=idle")
    stalls = timeline.stall_seconds()
    if stalls:
        lines.append("stalls: " + "  ".join(
            f"{cause}={sec:.3g}s" for cause, sec in sorted(stalls.items())))
    return "\n".join(lines) + "\n"


def gantt_and_legend(timeline: TimelineSink, width: int = 72,
                     max_ranks: int = 16) -> Optional[str]:
    """``ascii_gantt`` or ``None`` for an empty timeline (CLI helper)."""
    if not timeline.tasks:
        return None
    return ascii_gantt(timeline, width=width, max_ranks=max_ranks)
