"""Task-timeline capture: structured events from the schedule simulator.

The scheduler (:func:`repro.runtime.scheduler.simulate`) accepts an
optional :class:`TraceSink`; when one is attached it receives every
scheduling decision as a structured event — task executions, tile
transfers, barriers, and lookahead-gate stalls.  With no sink attached
the scheduler emits nothing (every emit site is guarded by
``if sink is not None``), so tracing is strictly opt-in and free.

:class:`TimelineSink` is the standard collector: it records the events
in order and offers the aggregations the exporters
(:mod:`repro.obs.export`) and reports are built on.  Custom sinks
(streaming to a file, sampling, filtering by rank) subclass
:class:`TraceSink` and override the callbacks they care about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Stall causes attributed by the scheduler.
STALL_DEPENDENCY = "dependency"
STALL_GATE = "lookahead-gate"
STALL_LINK = "link-busy"


@dataclass(frozen=True)
class TaskEvent:
    """One task execution on one slot of one rank."""

    tid: int
    kind: str          # kernel class (TaskKind.value)
    rank: int
    slot: str          # execution slot, e.g. "cpu0" or "gpu2"
    phase: int         # program phase (panel step)
    flops: float
    start: float
    end: float
    #: Duration as charged by the machine model.  Kept explicitly so
    #: exporters reproduce the scheduler's busy-time accounting bit for
    #: bit (``end - start`` re-derives it only up to roundoff).
    duration: float
    label: str = ""
    #: False for simulated schedules (machine-model durations); True
    #: when the event carries real wall-clock timestamps captured by
    #: the threaded backend (:mod:`repro.runtime.parallel`).  Same
    #: schema either way, so every exporter works on both.
    measured: bool = False
    #: Thread CPU seconds the payload burned (measured runs only;
    #: 0.0 for simulated events and payload-less tasks).  The gap
    #: ``duration - cpu`` is blocked time inside the task.
    cpu: float = 0.0


@dataclass(frozen=True)
class TransferEvent:
    """One tile movement over a modelled link."""

    src: int           # sending rank
    dst: int           # receiving rank (== src for H2D/D2H staging)
    nbytes: int
    leg: str           # "intra_node" | "inter_node" | "h2d" | "d2h"
    start: float
    end: float


@dataclass(frozen=True)
class BarrierEvent:
    """A fork-join barrier charged when the phase window advanced."""

    time: float        # when the last task of the phase completed
    until: float       # barrier floor imposed on subsequent tasks
    phase: int         # the phase that just completed


#: Fault/recovery event kinds emitted by the resilience subsystem.
FAULT_CRASH = "crash"
FAULT_TRANSIENT = "transient"
FAULT_REPLAY = "replay"
FAULT_SPECULATE = "speculate"
FAULT_CHECKPOINT = "checkpoint"
#: Live-backend (ParallelExecutor) recovery events.
FAULT_RETRY = "retry"
FAULT_TIMEOUT = "timeout"
FAULT_STALL = "stall"
FAULT_CORRUPTION = "corruption"
#: Algorithm-level numerical health interventions (tiled_qdwh guards).
FAULT_HEALTH = "health"
#: Network-chaos events (processes backend: ChaosComm / ReliableComm /
#: heartbeat failure detection).  Rendered on their own chaos lane in
#: chrome traces.
FAULT_NET_DROP = "net-drop"
FAULT_NET_CORRUPT = "net-corrupt"
FAULT_NET_PARTITION = "net-partition"
FAULT_HEARTBEAT_SUSPECT = "heartbeat-suspect"

#: Fault kinds that belong to the chaos/net lane.
NET_FAULT_KINDS = frozenset({
    FAULT_NET_DROP, FAULT_NET_CORRUPT, FAULT_NET_PARTITION,
    FAULT_HEARTBEAT_SUSPECT,
})


@dataclass(frozen=True)
class FaultEvent:
    """One fault-injection or recovery action (resilience subsystem).

    ``kind`` is one of the FAULT_* constants; ``tid`` is -1 for
    rank-level events (crashes).  ``detail`` carries the kind-specific
    payload: revoked/replayed counts for a crash, failed attempts for
    a transient, winner for a speculation.
    """

    kind: str
    time: float
    rank: int
    tid: int = -1
    detail: str = ""


@dataclass(frozen=True)
class StallEvent:
    """A task held back by the scheduler (not by hardware occupancy)."""

    tid: int
    cause: str         # one of the STALL_* constants
    start: float       # when the task became DAG-ready
    end: float         # when it was finally dispatched


@dataclass(frozen=True)
class SanitizerEvent:
    """One TileSan footprint finding (analysis subsystem).

    ``kind`` is a finding kind from :mod:`repro.analysis.sanitizer`
    (undeclared-read / undeclared-write / phantom-declaration /
    sync-in-payload); ``ref`` is the offending tile.
    """

    kind: str
    tid: int
    task_kind: str
    label: str
    ref: tuple
    detail: str = ""
    #: Trace-time placement; the sanitizer itself is timebase-agnostic
    #: and leaves 0.0 (findings render at the trace origin).
    time: float = 0.0


@dataclass(frozen=True)
class AnalysisEvent:
    """One DistSan finding (distributed-runtime analysis).

    ``checker`` names the producing pass (``explore`` / ``hb`` /
    ``protocol`` / ``refcount``); ``kind`` is the checker-specific
    finding kind (an invariant name, a race kind, a protocol rule).
    """

    checker: str
    kind: str
    tid: int = -1
    detail: str = ""
    #: Trace-time placement; analysis is post-hoc and leaves 0.0
    #: (findings render at the trace origin).
    time: float = 0.0


class TraceSink:
    """Callback interface the scheduler drives.  All no-ops here."""

    def on_task(self, ev: TaskEvent) -> None:  # pragma: no cover
        pass

    def on_transfer(self, ev: TransferEvent) -> None:  # pragma: no cover
        pass

    def on_barrier(self, ev: BarrierEvent) -> None:  # pragma: no cover
        pass

    def on_stall(self, ev: StallEvent) -> None:  # pragma: no cover
        pass

    def on_fault(self, ev: FaultEvent) -> None:  # pragma: no cover
        pass

    def on_sanitizer(self, ev: SanitizerEvent) -> None:  # pragma: no cover
        pass

    def on_analysis(self, ev: AnalysisEvent) -> None:  # pragma: no cover
        pass


class TimelineSink(TraceSink):
    """Collects every event in arrival order.

    The scheduler dispatches tasks out of program order, so
    ``tasks`` is ordered by *dispatch decision*, not by start time;
    use :meth:`sorted_tasks` for time order.
    """

    def __init__(self) -> None:
        self.tasks: List[TaskEvent] = []
        self.transfers: List[TransferEvent] = []
        self.barriers: List[BarrierEvent] = []
        self.stalls: List[StallEvent] = []
        self.faults: List[FaultEvent] = []
        self.sanitizer: List[SanitizerEvent] = []
        self.analysis: List[AnalysisEvent] = []

    # -- collection ----------------------------------------------------

    def on_task(self, ev: TaskEvent) -> None:
        self.tasks.append(ev)

    def on_transfer(self, ev: TransferEvent) -> None:
        self.transfers.append(ev)

    def on_barrier(self, ev: BarrierEvent) -> None:
        self.barriers.append(ev)

    def on_stall(self, ev: StallEvent) -> None:
        self.stalls.append(ev)

    def on_fault(self, ev: FaultEvent) -> None:
        self.faults.append(ev)

    def on_sanitizer(self, ev: SanitizerEvent) -> None:
        self.sanitizer.append(ev)

    def on_analysis(self, ev: AnalysisEvent) -> None:
        self.analysis.append(ev)

    # -- aggregations --------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def span(self) -> float:
        """Latest task end time (the captured makespan)."""
        return max((t.end for t in self.tasks), default=0.0)

    def sorted_tasks(self) -> List[TaskEvent]:
        return sorted(self.tasks, key=lambda t: (t.start, t.rank, t.slot))

    def per_rank_busy(self) -> Dict[int, float]:
        """Summed task durations per rank, in dispatch order.

        Matches ``ScheduleResult.per_rank_busy`` exactly (same addends,
        same order) — the exporter honesty checks rely on this.
        """
        busy: Dict[int, float] = {}
        for t in self.tasks:
            busy[t.rank] = busy.get(t.rank, 0.0) + t.duration
        return busy

    def per_kind_busy(self) -> Dict[str, float]:
        busy: Dict[str, float] = {}
        for t in self.tasks:
            busy[t.kind] = busy.get(t.kind, 0.0) + t.duration
        return busy

    def slots(self) -> List[Tuple[int, str]]:
        """All (rank, slot) pairs that executed work, sorted."""
        return sorted({(t.rank, t.slot) for t in self.tasks})

    def stall_seconds(self) -> Dict[str, float]:
        """Total stalled seconds by cause."""
        out: Dict[str, float] = {}
        for s in self.stalls:
            out[s.cause] = out.get(s.cause, 0.0) + (s.end - s.start)
        return out

    def transfer_bytes(self) -> Dict[str, int]:
        """Total transferred bytes by link leg."""
        out: Dict[str, int] = {}
        for x in self.transfers:
            out[x.leg] = out.get(x.leg, 0) + x.nbytes
        return out

    def fault_counts(self) -> Dict[str, int]:
        """Fault/recovery events by kind."""
        out: Dict[str, int] = {}
        for f in self.faults:
            out[f.kind] = out.get(f.kind, 0) + 1
        return out

    def sanitizer_counts(self) -> Dict[str, int]:
        """TileSan findings by kind."""
        out: Dict[str, int] = {}
        for s in self.sanitizer:
            out[s.kind] = out.get(s.kind, 0) + 1
        return out

    def analysis_counts(self) -> Dict[str, int]:
        """DistSan findings by ``checker:kind``."""
        out: Dict[str, int] = {}
        for a in self.analysis:
            key = f"{a.checker}:{a.kind}"
            out[key] = out.get(key, 0) + 1
        return out
