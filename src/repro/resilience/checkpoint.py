"""Checkpoint/restart for QDWH.

QDWH's per-iteration state is tiny and self-contained — the current
iterate ``A_k``, the lower bound ``L``, the iteration counters, and
the weight/convergence histories — which makes the iteration boundary
a natural checkpoint (Lewis et al., arXiv:2112.09017, make the same
observation for long dense-linalg runs on accelerator pods).

Two sides of the same policy:

* **eager numeric path** — :class:`QdwhCheckpointer` writes a real
  ``.npz`` every ``every`` iterations; ``qdwh(..., checkpoint=...)``
  resumes mid-run from the newest one and produces bit-identical
  ``U_p`` and ``H`` (the loop state round-trips exactly);
* **simulator** — :func:`checkpoint_write_cost` models the I/O time
  of one checkpoint and :func:`recovery_overhead_curve` evaluates the
  classic Young/Daly trade-off (checkpoint overhead vs. expected
  rework after a failure) over a range of MTTFs — the ``repro
  faults`` CLI prints these curves.
"""

from __future__ import annotations

import hashlib
import math
import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

#: Default modeled parallel-filesystem bandwidth per run (bytes/s):
#: a conservative burst-buffer-less share of Summit's Alpine / the
#: Frontier Orion Lustre for a few-node allocation.
DEFAULT_IO_BANDWIDTH = 2.5e9
#: Modeled per-checkpoint metadata/synchronization latency (seconds).
CHECKPOINT_LATENCY = 0.5


@dataclass(frozen=True)
class CheckpointPolicy:
    """When to write a checkpoint.

    ``every`` — write after every k-th iteration (k >= 1); the
    cost-model constructor :meth:`young_daly` picks k from the classic
    optimal interval ``tau* = sqrt(2 * C * MTTF)`` given the cost of
    one checkpoint write and the time one iteration takes.
    """

    every: int = 1

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(f"checkpoint interval must be >= 1, got "
                             f"{self.every}")

    def due(self, iteration: int) -> bool:
        """Checkpoint after this (1-based) iteration?"""
        return iteration % self.every == 0

    @classmethod
    def young_daly(cls, mttf: float, write_cost: float,
                   iter_time: float) -> "CheckpointPolicy":
        """Interval from the Young/Daly first-order optimum.

        ``tau* = sqrt(2 * write_cost * mttf)`` seconds, rounded to
        whole iterations of ``iter_time`` seconds each (at least 1).
        """
        if mttf <= 0.0 or write_cost < 0.0 or iter_time <= 0.0:
            raise ValueError("mttf and iter_time must be positive, "
                             "write_cost non-negative")
        tau = math.sqrt(2.0 * write_cost * mttf)
        return cls(every=max(1, round(tau / iter_time)))


def optimal_interval(mttf: float, write_cost: float) -> float:
    """Young/Daly optimal checkpoint interval in seconds."""
    if mttf <= 0.0 or write_cost < 0.0:
        raise ValueError("mttf must be positive, write_cost non-negative")
    return math.sqrt(2.0 * write_cost * mttf)


def expected_overhead(mttf: float, write_cost: float,
                      interval: Optional[float] = None) -> float:
    """First-order expected runtime overhead fraction.

    ``overhead(tau) = C/tau + tau/(2*MTTF)`` — checkpoint cost
    amortized per interval plus expected half-interval rework after a
    failure.  With ``interval=None`` the Young/Daly optimum is used,
    giving the well-known ``sqrt(2C/MTTF)`` floor.
    """
    tau = optimal_interval(mttf, write_cost) if interval is None else interval
    if tau <= 0.0:
        raise ValueError("interval must be positive")
    return write_cost / tau + tau / (2.0 * mttf)


def checkpoint_write_cost(m: int, n: int, itemsize: int = 8,
                          io_bandwidth: float = DEFAULT_IO_BANDWIDTH,
                          latency: float = CHECKPOINT_LATENCY) -> float:
    """Modeled seconds to write one QDWH checkpoint (the iterate A_k)."""
    if io_bandwidth <= 0.0:
        raise ValueError("io_bandwidth must be positive")
    return latency + (m * n * itemsize) / io_bandwidth


def recovery_overhead_curve(makespan: float, write_cost: float,
                            mttfs: List[float]
                            ) -> List[Dict[str, float]]:
    """Young/Daly recovery-overhead rows for a run of ``makespan`` s.

    One row per MTTF: the optimal checkpoint interval, the expected
    overhead fraction at that interval, and the expected wall time of
    the protected run (``makespan * (1 + overhead)``).
    """
    rows = []
    for mttf in mttfs:
        tau = optimal_interval(mttf, write_cost)
        ov = expected_overhead(mttf, write_cost, tau)
        rows.append({
            "mttf": mttf,
            "interval": tau,
            "checkpoints": (math.ceil(makespan / tau) if tau > 0 else 0),
            "overhead": ov,
            "expected_makespan": makespan * (1.0 + ov),
        })
    return rows


# ---------------------------------------------------------------------------
# Eager-path checkpointer (real .npz round-trip)
# ---------------------------------------------------------------------------

_CKPT_RE = re.compile(r"qdwh_ckpt_it(\d+)\.npz$")

#: Scalar loop state saved alongside the iterate.
_SCALAR_KEYS = ("li", "conv", "it", "it_qr", "it_chol", "alpha", "l0")


def input_fingerprint(a: np.ndarray) -> str:
    """Content hash identifying the problem a checkpoint belongs to.

    Shape and dtype alone cannot tell two same-shaped inputs apart, and
    resuming from another matrix's converged state silently returns
    wrong factors — so :func:`repro.core.qdwh_dense.qdwh` stores this
    hash with every checkpoint and rejects any whose fingerprint does
    not match its input.
    """
    h = hashlib.sha256()
    h.update(str(a.shape).encode())
    h.update(str(a.dtype).encode())
    h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()


class QdwhCheckpointer:
    """Directory-backed checkpoint store for the dense QDWH loop.

    One file per checkpoint (``qdwh_ckpt_it003.npz``); ``load``
    returns the newest complete state.  Writes are atomic (temp file +
    rename) so a run killed mid-write never corrupts the newest
    checkpoint.  ``keep`` bounds the files retained on disk.
    """

    def __init__(self, directory: str,
                 policy: Optional[CheckpointPolicy] = None,
                 keep: int = 2) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = directory
        self.policy = policy or CheckpointPolicy()
        self.keep = keep
        os.makedirs(directory, exist_ok=True)
        self.writes = 0

    def due(self, iteration: int) -> bool:
        return self.policy.due(iteration)

    def _path(self, it: int) -> str:
        return os.path.join(self.directory, f"qdwh_ckpt_it{it:03d}.npz")

    def _existing(self) -> List[Tuple[int, str]]:
        out = []
        for name in os.listdir(self.directory):
            m = _CKPT_RE.match(name)
            if m:
                out.append((int(m.group(1)),
                            os.path.join(self.directory, name)))
        return sorted(out)

    def save(self, *, ak: np.ndarray, li: float, conv: float, it: int,
             it_qr: int, it_chol: int, alpha: float, l0: float,
             conv_history: List[float],
             weight_history: List[tuple],
             fingerprint: Optional[str] = None) -> str:
        """Write iteration ``it``'s full loop state; returns the path.

        ``fingerprint`` (see :func:`input_fingerprint`) names the input
        matrix this state belongs to; ``load`` hands it back so the
        resume path can refuse another problem's checkpoint.
        """
        path = self._path(it)
        # savez appends .npz to suffix-less names; keep the temp name
        # explicit so the atomic rename sees the real file.
        tmp = path + ".tmp.npz"
        wh = np.asarray(weight_history, dtype=np.float64)
        arrays = dict(
            ak=ak,
            scalars=np.array([li, conv, it, it_qr, it_chol,
                              alpha, l0], dtype=np.float64),
            conv_history=np.asarray(conv_history, dtype=np.float64),
            weight_history=(wh if wh.size else
                            np.zeros((0, 3), dtype=np.float64)))
        if fingerprint is not None:
            arrays["fingerprint"] = np.array(fingerprint)
        np.savez(tmp, **arrays)
        os.replace(tmp, path)
        self.writes += 1
        for _, old in self._existing()[:-self.keep]:
            os.remove(old)
        from ..obs.metrics import get_registry
        get_registry().counter("resilience.checkpoint_writes").inc()
        return path

    def load(self) -> Optional[Dict[str, object]]:
        """Newest checkpoint state, or ``None`` when the dir is empty."""
        existing = self._existing()
        if not existing:
            return None
        _, path = existing[-1]
        with np.load(path) as data:
            scalars = data["scalars"]
            state: Dict[str, object] = {
                k: float(scalars[i]) for i, k in enumerate(_SCALAR_KEYS)}
            for k in ("it", "it_qr", "it_chol"):
                state[k] = int(state[k])
            state["ak"] = data["ak"]
            state["conv_history"] = [float(v)
                                     for v in data["conv_history"]]
            state["weight_history"] = [tuple(float(x) for x in row)
                                       for row in data["weight_history"]]
            state["fingerprint"] = (str(data["fingerprint"])
                                    if "fingerprint" in data.files else None)
        from ..obs.metrics import get_registry
        get_registry().counter("resilience.checkpoint_restores").inc()
        return state

    def clear(self) -> None:
        """Remove every checkpoint file (after a successful run)."""
        for _, path in self._existing():
            os.remove(path)
