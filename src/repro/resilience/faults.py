"""Deterministic, seed-driven fault plans for the schedule simulator.

The paper's target machines (Summit, Frontier) run QDWH at scales
where node failures and stragglers are routine.  A :class:`FaultPlan`
describes what goes wrong in one simulated run:

* :class:`RankCrash` — a rank dies at an absolute simulated time; its
  resident tiles are lost and its pending work must move to survivors
  (recovery is lineage replay, see :mod:`.recovery`);
* :class:`TransientFaults` — every kernel invocation fails with
  probability ``p`` (soft errors, ECC retries, XID resets); failed
  attempts are retried on the same slot with exponential backoff;
* :class:`LinkDegradation` — α/β multipliers on a (src, dst) rank
  path over a time window (a flaky cable, a congested switch);
* :class:`StragglerSlot` — a rate multiplier on one rank over a time
  window (thermal throttling, a noisy neighbour); the scheduler's
  straggler mitigation speculatively duplicates the affected tasks.

Two further fault classes target the *live* threaded backend
(:mod:`repro.runtime.parallel` via :mod:`repro.resilience.live`) and
are ignored by the simulator:

* :class:`WorkerStall` — an injected pre-payload sleep inside a real
  worker thread (models a descheduled core / page-fault storm); the
  executor's straggler monitor detects it and launches a speculative
  backup attempt;
* :class:`TileCorruption` — a NaN/Inf overwrite of one of a task's
  output tiles after the payload ran (models a silent data corruption
  that *is* caught, e.g. by checksums); the executor restores the
  pre-task snapshot and retries.

Plans are **deterministic**: the same plan and seed perturb the same
tasks the same way regardless of dispatch order (per-task derived
RNG streams), so faulty makespans are bit-reproducible — the property
the fault smoke benchmark asserts.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .net import NetFaultPlan

_INF = float("inf")


@dataclass(frozen=True)
class RankCrash:
    """Rank ``rank`` fails permanently at simulated time ``time``."""

    rank: int
    time: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"crash rank must be >= 0, got {self.rank}")
        if not self.time >= 0.0:
            raise ValueError(f"crash time must be >= 0, got {self.time}")


@dataclass(frozen=True)
class TransientFaults:
    """Per-attempt kernel failure model with capped exponential backoff."""

    probability: float
    max_attempts: int = 4
    #: Backoff before retry k is ``backoff * 2**(k-1)`` seconds.
    backoff: float = 1.0e-3

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"failure probability must be in [0, 1], got "
                f"{self.probability}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff < 0.0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")


@dataclass(frozen=True)
class LinkDegradation:
    """α/β multipliers on the (src, dst) rank path during a window.

    ``src``/``dst`` of ``None`` match any rank.  ``alpha_factor``
    multiplies the link latency, ``beta_factor`` the inverse bandwidth
    (a ``beta_factor`` of 2 halves the effective bandwidth).
    """

    src: Optional[int] = None
    dst: Optional[int] = None
    alpha_factor: float = 1.0
    beta_factor: float = 1.0
    start: float = 0.0
    end: float = _INF

    def __post_init__(self) -> None:
        if self.alpha_factor < 1.0 or self.beta_factor < 1.0:
            raise ValueError(
                "link degradation factors must be >= 1 (degradation "
                f"only); got alpha={self.alpha_factor}, "
                f"beta={self.beta_factor}")
        if self.end < self.start:
            raise ValueError("degradation window end precedes start")

    def matches(self, src: int, dst: int, t: float) -> bool:
        return ((self.src is None or self.src == src)
                and (self.dst is None or self.dst == dst)
                and self.start <= t < self.end)


@dataclass(frozen=True)
class StragglerSlot:
    """Rank ``rank`` runs ``factor``x slower during [start, end)."""

    rank: int
    factor: float
    start: float = 0.0
    end: float = _INF

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise ValueError(
                f"straggler factor must be >= 1 (slowdown only), got "
                f"{self.factor}")
        if self.end < self.start:
            raise ValueError("straggler window end precedes start")


@dataclass(frozen=True)
class WorkerStall:
    """Injected pre-payload sleep inside a live worker thread.

    Each attempt of each matching task stalls with probability
    ``probability`` for ``seconds`` of wall-clock time before its
    payload runs.  The sleep is interruptible: when the executor's
    straggler monitor launches a backup attempt and the backup claims
    the payload first, the stalled original wakes immediately and
    reports itself lost.  ``kinds`` (lowercase :class:`TaskKind`
    names, e.g. ``("gemm",)``) restricts which tasks may stall;
    ``None`` matches every kind.
    """

    probability: float
    seconds: float = 0.25
    kinds: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.kinds is not None:
            object.__setattr__(self, "kinds",
                               tuple(str(k).lower() for k in self.kinds))
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"stall probability must be in [0, 1], got "
                f"{self.probability}")
        if self.seconds <= 0.0:
            raise ValueError(
                f"stall seconds must be > 0, got {self.seconds}")

    def matches_kind(self, kind: str) -> bool:
        return self.kinds is None or kind.lower() in self.kinds


@dataclass(frozen=True)
class TileCorruption:
    """Post-payload NaN/Inf overwrite of one output tile (live backend).

    After a matching task's payload runs, with probability
    ``probability`` one of its write tiles has a single entry replaced
    by ``value`` ("nan" or "inf").  The executor detects the
    corruption, restores the task's pre-execution tile snapshot, and
    retries — so a corruption consumes one retry, exactly like a
    transient.  At most ``max_events`` corruptions fire per run
    (first-come in dispatch order).  ``kinds`` restricts eligible task
    kinds as in :class:`WorkerStall`.
    """

    probability: float
    value: str = "nan"
    max_events: int = 1
    kinds: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.kinds is not None:
            object.__setattr__(self, "kinds",
                               tuple(str(k).lower() for k in self.kinds))
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"corruption probability must be in [0, 1], got "
                f"{self.probability}")
        if self.value not in ("nan", "inf"):
            raise ValueError(
                f"corruption value must be 'nan' or 'inf', got "
                f"{self.value!r}")
        if self.max_events < 1:
            raise ValueError(
                f"max_events must be >= 1, got {self.max_events}")

    def matches_kind(self, kind: str) -> bool:
        return self.kinds is None or kind.lower() in self.kinds


@dataclass(frozen=True)
class FaultPlan:
    """One run's worth of injected faults (deterministic given seed)."""

    seed: int = 0
    crashes: Tuple[RankCrash, ...] = ()
    transient: Optional[TransientFaults] = None
    links: Tuple[LinkDegradation, ...] = ()
    stragglers: Tuple[StragglerSlot, ...] = ()
    #: Live-backend faults (ignored by the schedule simulator).
    stalls: Tuple[WorkerStall, ...] = ()
    corruptions: Tuple[TileCorruption, ...] = ()
    #: Straggler mitigation: duplicate a task on another rank once it
    #: has run ``speculation_factor`` times its nominal duration
    #: without finishing; first finisher wins, the loser is cancelled.
    speculation: bool = True
    speculation_factor: float = 2.0
    #: Delay between a crash and the survivors reacting to it
    #: (failure-detector latency; charged before any replay dispatch).
    crash_detect_delay: float = 0.0
    #: Live network faults for the processes backend (injected by
    #: ChaosComm on the real wire; ignored by the simulator).
    net: Optional[NetFaultPlan] = None

    def __post_init__(self) -> None:
        # Tolerate lists from hand-built plans / JSON round-trips.
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        object.__setattr__(self, "stalls", tuple(self.stalls))
        object.__setattr__(self, "corruptions", tuple(self.corruptions))
        if self.speculation_factor < 1.0:
            raise ValueError(
                f"speculation_factor must be >= 1, got "
                f"{self.speculation_factor}")
        if self.crash_detect_delay < 0.0:
            raise ValueError("crash_detect_delay must be >= 0")
        seen = set()
        for c in self.crashes:
            if c.rank in seen:
                raise ValueError(f"rank {c.rank} crashes more than once")
            seen.add(c.rank)

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return (not self.crashes and not self.links and not self.stragglers
                and not self.live_faults
                and (self.transient is None
                     or self.transient.probability == 0.0)
                and (self.net is None or self.net.empty))

    @property
    def live_faults(self) -> bool:
        """True when the plan carries live-backend stall/corruption
        injections."""
        return (any(s.probability > 0.0 for s in self.stalls)
                or any(c.probability > 0.0 for c in self.corruptions))

    # ------------------------------------------------------------------
    # Deterministic per-task randomness
    # ------------------------------------------------------------------

    def task_rng(self, tid: int, epoch: int = 0) -> random.Random:
        """A private RNG stream for (task, attempt-epoch).

        Derived arithmetically from the plan seed so draws do not
        depend on dispatch order — two runs of the same plan perturb
        the same tasks identically even if recovery reorders dispatch.
        """
        return random.Random(
            (self.seed * 1_000_003 + tid) * 2_147_483_647 + epoch)

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------

    @classmethod
    def poisson_crashes(cls, mttf: float, horizon: float, ranks: int,
                        seed: int = 0, **kwargs) -> "FaultPlan":
        """Exponentially-distributed rank crashes over ``[0, horizon]``.

        Each of the ``ranks`` ranks draws an exponential failure time
        with mean ``mttf * ranks`` (a system MTTF of ``mttf`` across
        the whole allocation); draws landing past ``horizon`` mean the
        rank survives the run.  At least one surviving rank is always
        kept (the last would-be casualty is spared).
        """
        if mttf <= 0.0 or horizon <= 0.0 or ranks <= 0:
            raise ValueError("mttf, horizon, and ranks must be positive")
        rng = random.Random(seed * 7_368_787 + ranks)
        crashes: List[RankCrash] = []
        for r in range(ranks):
            t = rng.expovariate(1.0 / (mttf * ranks))
            if t < horizon:
                crashes.append(RankCrash(rank=r, time=t))
        if len(crashes) >= ranks:  # spare one rank: someone must recover
            crashes.sort(key=lambda c: c.time)
            crashes = crashes[:ranks - 1]
        return cls(seed=seed, crashes=tuple(crashes), **kwargs)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    # ------------------------------------------------------------------
    # Serialization (the CLI's --fault-plan JSON)
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "seed": self.seed,
            "speculation": self.speculation,
            "speculation_factor": self.speculation_factor,
            "crash_detect_delay": self.crash_detect_delay,
        }
        if self.crashes:
            out["crashes"] = [{"rank": c.rank, "time": c.time}
                              for c in self.crashes]
        if self.transient is not None:
            out["transient"] = {
                "probability": self.transient.probability,
                "max_attempts": self.transient.max_attempts,
                "backoff": self.transient.backoff,
            }
        if self.links:
            out["links"] = [
                {"src": f.src, "dst": f.dst,
                 "alpha_factor": f.alpha_factor,
                 "beta_factor": f.beta_factor,
                 "start": f.start,
                 "end": (None if math.isinf(f.end) else f.end)}
                for f in self.links]
        if self.stragglers:
            out["stragglers"] = [
                {"rank": s.rank, "factor": s.factor, "start": s.start,
                 "end": (None if math.isinf(s.end) else s.end)}
                for s in self.stragglers]
        if self.stalls:
            out["stalls"] = [
                {"probability": s.probability, "seconds": s.seconds,
                 "kinds": (None if s.kinds is None else list(s.kinds))}
                for s in self.stalls]
        if self.corruptions:
            out["corruptions"] = [
                {"probability": c.probability, "value": c.value,
                 "max_events": c.max_events,
                 "kinds": (None if c.kinds is None else list(c.kinds))}
                for c in self.corruptions]
        if self.net is not None:
            out["net"] = self.net.as_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        known = {"seed", "crashes", "transient", "links", "stragglers",
                 "stalls", "corruptions", "net",
                 "speculation", "speculation_factor", "crash_detect_delay"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown fault-plan keys: {sorted(unknown)}")

        def window(d):
            return {"start": d.get("start", 0.0),
                    "end": _INF if d.get("end") is None else d["end"]}

        return cls(
            seed=int(data.get("seed", 0)),
            crashes=tuple(RankCrash(rank=int(c["rank"]),
                                    time=float(c["time"]))
                          for c in data.get("crashes", ())),
            transient=(TransientFaults(**data["transient"])
                       if data.get("transient") else None),
            links=tuple(LinkDegradation(
                src=f.get("src"), dst=f.get("dst"),
                alpha_factor=f.get("alpha_factor", 1.0),
                beta_factor=f.get("beta_factor", 1.0), **window(f))
                for f in data.get("links", ())),
            stragglers=tuple(StragglerSlot(
                rank=int(s["rank"]), factor=float(s["factor"]),
                **window(s))
                for s in data.get("stragglers", ())),
            stalls=tuple(WorkerStall(
                probability=float(s["probability"]),
                seconds=float(s.get("seconds", 0.25)),
                kinds=(None if s.get("kinds") is None
                       else tuple(s["kinds"])))
                for s in data.get("stalls", ())),
            corruptions=tuple(TileCorruption(
                probability=float(c["probability"]),
                value=str(c.get("value", "nan")),
                max_events=int(c.get("max_events", 1)),
                kinds=(None if c.get("kinds") is None
                       else tuple(c["kinds"])))
                for c in data.get("corruptions", ())),
            net=(NetFaultPlan.from_dict(data["net"])
                 if data.get("net") else None),
            speculation=bool(data.get("speculation", True)),
            speculation_factor=float(data.get("speculation_factor", 2.0)),
            crash_detect_delay=float(data.get("crash_detect_delay", 0.0)),
        )

    def to_json(self, path: str) -> str:
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=2)
        return path

    @classmethod
    def from_json(cls, path: str) -> "FaultPlan":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


@dataclass
class RecoveryStats:
    """What resilience cost one simulated run (ScheduleResult.recovery)."""

    crashes: int = 0
    dead_ranks: Tuple[int, ...] = ()
    revoked_inflight: int = 0
    replayed_tasks: int = 0
    lost_tiles: int = 0
    transient_failures: int = 0
    retried_tasks: int = 0
    speculative_duplicates: int = 0
    speculation_wins: int = 0
    degraded_transfers: int = 0
    #: Re-execution seconds charged to recovery (replayed + failed
    #: attempts + speculative duplicates).
    reexecution_seconds: float = 0.0
    #: Extra bytes moved for speculative input refetch.  (Replay
    #: re-communication flows through the regular transfer paths and
    #: is counted in the run's CommCounters.)
    recovery_bytes: int = 0
    #: Live-backend counters (ParallelExecutor; zero for simulated runs).
    timeouts: int = 0
    corrupted_tiles: int = 0
    injected_stalls: int = 0
    #: Algorithm-level health interventions (NaN guard, Cholesky→QR
    #: fallback, estimator defaults, dense degradation).
    health_events: int = 0
    #: Network resilience counters (processes backend; driver-side).
    net_drops: int = 0
    net_corrupt_frames: int = 0
    net_retransmits: int = 0
    net_reconnects: int = 0
    heartbeat_suspects: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "crashes": self.crashes,
            "dead_ranks": list(self.dead_ranks),
            "revoked_inflight": self.revoked_inflight,
            "replayed_tasks": self.replayed_tasks,
            "lost_tiles": self.lost_tiles,
            "transient_failures": self.transient_failures,
            "retried_tasks": self.retried_tasks,
            "speculative_duplicates": self.speculative_duplicates,
            "speculation_wins": self.speculation_wins,
            "degraded_transfers": self.degraded_transfers,
            "reexecution_seconds": self.reexecution_seconds,
            "recovery_bytes": self.recovery_bytes,
            "timeouts": self.timeouts,
            "corrupted_tiles": self.corrupted_tiles,
            "injected_stalls": self.injected_stalls,
            "health_events": self.health_events,
            "net_drops": self.net_drops,
            "net_corrupt_frames": self.net_corrupt_frames,
            "net_retransmits": self.net_retransmits,
            "net_reconnects": self.net_reconnects,
            "heartbeat_suspects": self.heartbeat_suspects,
        }

    def publish(self, registry, prefix: str = "resilience") -> None:
        """Batch the stats into an obs metrics registry."""
        for name, value in (
                ("crashes", self.crashes),
                ("tasks_replayed", self.replayed_tasks),
                ("inflight_revoked", self.revoked_inflight),
                ("tiles_lost", self.lost_tiles),
                ("transient_failures", self.transient_failures),
                ("tasks_retried", self.retried_tasks),
                ("speculative_duplicates", self.speculative_duplicates),
                ("speculation_wins", self.speculation_wins),
                ("degraded_transfers", self.degraded_transfers),
                ("reexecution_seconds", self.reexecution_seconds),
                ("recovery_bytes", self.recovery_bytes),
                ("timeouts", self.timeouts),
                ("corrupted_tiles", self.corrupted_tiles),
                ("injected_stalls", self.injected_stalls),
                ("health_events", self.health_events),
                ("net_drops", self.net_drops),
                ("net_corrupt_frames", self.net_corrupt_frames),
                ("net_retransmits", self.net_retransmits),
                ("net_reconnects", self.net_reconnects),
                ("heartbeat_suspects", self.heartbeat_suspects)):
            if value:
                registry.counter(f"{prefix}.{name}").inc(value)


def plan_from_spec(*, seed: int = 0,
                   crash: Sequence[str] = (),
                   transient_p: float = 0.0,
                   max_attempts: int = 4,
                   straggler: Sequence[str] = (),
                   link_factor: float = 1.0,
                   speculation: bool = True,
                   stall_p: float = 0.0,
                   stall_seconds: float = 0.25,
                   corrupt_p: float = 0.0) -> FaultPlan:
    """Build a plan from CLI-style compact specs.

    ``crash`` entries are ``"RANK@TIME"``; ``straggler`` entries are
    ``"RANK@FACTOR"`` (whole-run window); ``link_factor`` > 1 degrades
    every inter-rank path's bandwidth by that factor.  ``stall_p`` and
    ``corrupt_p`` add live-backend worker stalls and a single NaN tile
    corruption (see :class:`WorkerStall` / :class:`TileCorruption`).
    """
    def split(spec: str, what: str) -> Tuple[int, float]:
        try:
            r, v = spec.split("@")
            return int(r), float(v)
        except ValueError:
            raise ValueError(
                f"bad {what} spec {spec!r}; expected RANK@VALUE") from None

    crashes = tuple(RankCrash(*split(s, "crash")) for s in crash)
    stragglers = tuple(StragglerSlot(rank=r, factor=f)
                       for r, f in (split(s, "straggler")
                                    for s in straggler))
    links = ((LinkDegradation(beta_factor=link_factor),)
             if link_factor > 1.0 else ())
    transient = (TransientFaults(probability=transient_p,
                                 max_attempts=max_attempts)
                 if transient_p > 0.0 else None)
    stalls = ((WorkerStall(probability=stall_p, seconds=stall_seconds),)
              if stall_p > 0.0 else ())
    corruptions = ((TileCorruption(probability=corrupt_p),)
                   if corrupt_p > 0.0 else ())
    return FaultPlan(seed=seed, crashes=crashes, transient=transient,
                     links=links, stragglers=stragglers,
                     stalls=stalls, corruptions=corruptions,
                     speculation=speculation)
