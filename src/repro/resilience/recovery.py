"""Recovery machinery for the event-driven scheduler.

:class:`ResilienceState` is the live fault/recovery state of one
simulated run.  The scheduler (:func:`repro.runtime.scheduler.simulate`)
creates one when a :class:`~repro.resilience.faults.FaultPlan` is
supplied and consults it at guarded points — every consult site is
behind ``if fstate is not None``, so a fault-free run touches none of
this and stays bit-identical to the pre-resilience scheduler.

Recovery semantics (dask/Spark-style lineage replay):

* a **transient** task failure retries on the same slot with
  exponential backoff, up to ``max_attempts``;
* a **rank crash** kills the rank's in-flight work and invalidates
  every tile whose only copy lived there; the minimal replay subgraph
  — the last-writer lineage closure of the lost tiles restricted to
  what the remaining program still needs — is recomputed via
  :func:`lineage_replay_set` and re-executed on surviving ranks,
  charging re-execution and re-communication to the makespan;
* a **straggler**-inflated task triggers speculative duplicate
  execution on the least-loaded surviving rank after
  ``speculation_factor`` nominal durations, first finisher wins.

The scheduler owns all timing state; this module owns fault policy
(who dies when, which attempts fail, who is slow) and the pure graph
computation of what must be replayed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Set, Tuple

from .faults import FaultPlan, RecoveryStats

if TYPE_CHECKING:  # pragma: no cover
    from ..comm.network import NetworkModel
    from ..runtime.task import Task


class FaultToleranceExceeded(RuntimeError):
    """A task failed more times than the plan's retry budget allows."""


class AllRanksDead(RuntimeError):
    """The fault plan killed every rank; nothing can recover."""


def lineage_replay_set(tasks: Sequence["Task"], done: Sequence[bool],
                       lost: Set[int]) -> Set[int]:
    """Minimal set of completed tasks to re-execute after tile loss.

    ``lost`` holds tids of completed tasks whose outputs have no
    surviving copy.  Walk the dependency (last-writer) chains of every
    task that still has to run: any lost producer it needs must be
    replayed, and a replayed producer in turn needs *its* inputs, so
    lost producers of replayed tasks join the set transitively —
    exactly the recursive recomputation dask's scheduler performs when
    a worker holding intermediate results dies.

    Completed tasks whose outputs are lost but that nothing pending
    (transitively) reads are *not* replayed — their results are dead.
    """
    replay: Set[int] = set()
    stack: List[int] = [t.tid for t in tasks if not done[t.tid]]
    seen: Set[int] = set(stack)
    while stack:
        tid = stack.pop()
        for d in tasks[tid].deps:
            if d in lost and d not in replay:
                replay.add(d)
            # A dep that is itself rerunning (lost, or revoked) pulls
            # its own inputs back into consideration.
            if (d in replay or not done[d]) and d not in seen:
                seen.add(d)
                stack.append(d)
    return replay


class ResilienceState:
    """Per-run fault state the scheduler consults and mutates."""

    def __init__(self, plan: FaultPlan, n_tasks: int, ranks: int,
                 net: "NetworkModel") -> None:
        for c in plan.crashes:
            if c.rank >= ranks:
                raise ValueError(
                    f"fault plan crashes rank {c.rank} but the run has "
                    f"only {ranks} ranks")
        if len({c.rank for c in plan.crashes}) >= ranks:
            raise AllRanksDead(
                f"fault plan kills all {ranks} ranks; at least one must "
                f"survive to recover")
        self.plan = plan
        self.net = net
        self.ranks = ranks
        self.dead: Set[int] = set()
        self.last_crash_time = 0.0
        #: Per-task attempt epoch; bumping it invalidates queued
        #: completion events (lazy revocation).
        self.attempt = [0] * n_tasks
        self.stats = RecoveryStats()
        # Pre-sort stragglers/links once; lookups are O(#faults).
        self._stragglers = plan.stragglers
        self._links = plan.links

    # ------------------------------------------------------------------
    # Crash bookkeeping
    # ------------------------------------------------------------------

    def survivors(self) -> List[int]:
        return [r for r in range(self.ranks) if r not in self.dead]

    def mark_dead(self, rank: int, now: float) -> None:
        self.dead.add(rank)
        if len(self.dead) >= self.ranks:
            raise AllRanksDead("every rank has crashed")
        self.last_crash_time = max(self.last_crash_time, now)
        self.stats.crashes += 1
        self.stats.dead_ranks = tuple(sorted(self.dead))

    def remap_rank(self, rank: int) -> int:
        """Deterministic replacement rank for a dead rank's work."""
        if rank not in self.dead:
            return rank
        alive = self.survivors()
        return alive[rank % len(alive)]

    @property
    def recovery_floor(self) -> float:
        """No replayed/remapped work starts before detection completes."""
        return self.last_crash_time + self.plan.crash_detect_delay

    # ------------------------------------------------------------------
    # Transient failures
    # ------------------------------------------------------------------

    def transient_schedule(self, tid: int, kind: str,
                           attempt_dur: float) -> Tuple[int, float]:
        """(failed attempts, extra seconds before the winning attempt).

        Deterministic per (task, epoch): the same plan produces the
        same retry storm regardless of dispatch order.  Raises
        :class:`FaultToleranceExceeded` when every allowed attempt
        fails.
        """
        tf = self.plan.transient
        if tf is None or tf.probability <= 0.0:
            return 0, 0.0
        rng = self.plan.task_rng(tid, self.attempt[tid])
        fails = 0
        while fails < tf.max_attempts and rng.random() < tf.probability:
            fails += 1
        if fails >= tf.max_attempts:
            raise FaultToleranceExceeded(
                f"task {tid} ({kind}) failed {fails} consecutive "
                f"attempts (max_attempts={tf.max_attempts}, "
                f"p={tf.probability})")
        if fails == 0:
            return 0, 0.0
        extra = 0.0
        for k in range(fails):
            extra += attempt_dur + tf.backoff * (2.0 ** k)
        self.stats.transient_failures += fails
        self.stats.retried_tasks += 1
        self.stats.reexecution_seconds += fails * attempt_dur
        return fails, extra

    # ------------------------------------------------------------------
    # Stragglers & link degradation
    # ------------------------------------------------------------------

    def straggler_factor(self, rank: int, t: float) -> float:
        """Combined slowdown factor on ``rank`` at time ``t`` (>= 1)."""
        f = 1.0
        for s in self._stragglers:
            if s.rank == rank and s.start <= t < s.end:
                f *= s.factor
        return f

    def degrade_transfer(self, src: int, dst: int, t: float, nbytes: int,
                         same_node: bool, dur: float) -> float:
        """Apply matching link degradations to a transfer duration.

        α and β multipliers act on the base leg's latency and byte
        time separately: ``dur' = dur + (αf-1)·α + (βf-1)·bytes/β``.
        """
        af = bf = 1.0
        for f in self._links:
            if f.matches(src, dst, t):
                af *= f.alpha_factor
                bf *= f.beta_factor
        if af == 1.0 and bf == 1.0:
            return dur
        net = self.net
        if same_node:
            lat, bw = net.intra_latency, net.intra_bandwidth
        else:
            lat, bw = net.inter_latency, net.inter_bandwidth
        self.stats.degraded_transfers += 1
        return dur + (af - 1.0) * lat + (bf - 1.0) * nbytes / bw

    # ------------------------------------------------------------------
    # Speculation
    # ------------------------------------------------------------------

    def should_speculate(self, nominal: float, actual_span: float) -> bool:
        """Duplicate once the task overruns the detection threshold."""
        return (self.plan.speculation
                and self.ranks - len(self.dead) > 1
                and actual_span > self.plan.speculation_factor * nominal)

    def speculation_detect_time(self, beg: float, nominal: float) -> float:
        return beg + self.plan.speculation_factor * nominal
