"""Network fault plans and failure-detection primitives.

A :class:`NetFaultPlan` extends :class:`~repro.resilience.faults.FaultPlan`
(via its ``net`` field) onto the real wire of the multi-process
backend: where the simulator prices link degradation, ChaosComm
(:mod:`repro.runtime.distributed.chaos`) *injects* it into live
driver↔worker connections — per-frame drops, duplicates, bounded
delays, byte corruption, one-way stalls, scheduled partitions, and
deterministic mid-stream connection cuts.

Like :class:`FaultPlan`, a net plan is **deterministic**: every
per-frame decision derives arithmetically from ``(seed, endpoint,
frame index)`` so the same plan perturbs the same frames the same way
on every run, regardless of thread interleaving.

Two recovery-side primitives live here as well, so both the driver
and the resilience tests can share them:

* :class:`BackoffSchedule` — a seeded, jittered, deadline-budgeted
  exponential backoff (reconnect pacing for
  :class:`~repro.runtime.distributed.reliable.ReliableComm`);
* :class:`PhiAccrualDetector` — a phi-accrual failure detector over
  heartbeat arrival times (Hayashibara et al.), feeding the
  scheduler's suspicion state and the executor's early-kill path.
"""

from __future__ import annotations

import json
import math
import random
import threading
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FrameDrop", "FrameDuplicate", "FrameDelay", "FrameCorrupt",
    "LinkStall", "NetPartition", "ConnectionCut", "NetFaultPlan",
    "BackoffSchedule", "PhiAccrualDetector", "default_chaos_plan",
]

_INF = float("inf")

#: LinkStall directions: worker→driver and driver→worker.
STALL_DIRECTIONS = ("w2d", "d2w")


@dataclass(frozen=True)
class FrameDrop:
    """Each sent frame vanishes with probability ``probability``.

    ``max_events`` bounds the number of drops per endpoint process
    (``None`` = unbounded).
    """

    probability: float
    max_events: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"drop probability must be in [0, 1], got "
                f"{self.probability}")
        if self.max_events is not None and self.max_events < 1:
            raise ValueError(
                f"max_events must be >= 1 or None, got {self.max_events}")


@dataclass(frozen=True)
class FrameDuplicate:
    """Each sent frame is transmitted twice with probability
    ``probability`` (the receiver's sequence numbers discard the
    copy)."""

    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"duplicate probability must be in [0, 1], got "
                f"{self.probability}")


@dataclass(frozen=True)
class FrameDelay:
    """Each sent frame sleeps a bounded, seeded-uniform delay in
    ``[min_seconds, seconds]`` with probability ``probability``."""

    probability: float
    seconds: float = 0.005
    min_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"delay probability must be in [0, 1], got "
                f"{self.probability}")
        if self.seconds <= 0.0:
            raise ValueError(f"delay seconds must be > 0, got "
                             f"{self.seconds}")
        if not 0.0 <= self.min_seconds <= self.seconds:
            raise ValueError("delay min_seconds must be in [0, seconds]")


@dataclass(frozen=True)
class FrameCorrupt:
    """Flip one payload byte of a sent frame with probability
    ``probability`` (at most ``max_events`` frames per run).

    Only the *payload* is corrupted — never the length/codec header —
    so the stream stays framed and the CRC32 trailer is what catches
    the damage.  Injection is driver-side only, which makes
    ``max_events`` a global (per-run) bound.
    """

    probability: float
    max_events: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"corrupt probability must be in [0, 1], got "
                f"{self.probability}")
        if self.max_events < 1:
            raise ValueError(
                f"max_events must be >= 1, got {self.max_events}")


@dataclass(frozen=True)
class LinkStall:
    """One-way silence: every frame the worker in slot ``wid`` sends
    (``"w2d"``) or receives (``"d2w"``) during ``[start, end)`` is
    dropped.

    ``wid`` here (and in :class:`NetPartition` / :class:`ConnectionCut`)
    is the stable worker *lane* 0..workers-1, not the executor's
    internal per-fork worker id — those are unique per execution
    window and would only ever match the first one.

    Models a hung NIC / switch queue in one direction: the worker
    keeps computing but its replies (and heartbeats) never arrive, so
    only the failure detector can tell it from a live worker.
    """

    wid: int
    direction: str = "w2d"
    start: float = 0.0
    end: float = _INF

    def __post_init__(self) -> None:
        if self.wid < 0:
            raise ValueError(f"stall wid must be >= 0, got {self.wid}")
        if self.direction not in STALL_DIRECTIONS:
            raise ValueError(
                f"stall direction must be one of {STALL_DIRECTIONS}, "
                f"got {self.direction!r}")
        if self.end < self.start:
            raise ValueError("stall window end precedes start")


@dataclass(frozen=True)
class NetPartition:
    """Both-ways silence between the driver and the workers in lanes
    ``wids`` during ``[start, end)`` (seconds from executor start)."""

    wids: Tuple[int, ...]
    start: float = 0.0
    end: float = _INF

    def __post_init__(self) -> None:
        object.__setattr__(self, "wids", tuple(int(w) for w in self.wids))
        if not self.wids:
            raise ValueError("partition needs at least one wid")
        if any(w < 0 for w in self.wids):
            raise ValueError(f"partition wids must be >= 0, got "
                             f"{self.wids}")
        if self.end < self.start:
            raise ValueError("partition window end precedes start")


@dataclass(frozen=True)
class ConnectionCut:
    """Lane ``wid``'s connection is severed after the slot has carried
    ``after_frames`` frames (sent + received, counted driver-side and
    accumulated across execution windows).

    Deterministic by construction — a frame count, not a wall-clock
    time — so the cut always lands on the same frame.  Recovery is the
    reconnect-and-resync handshake, not a worker respawn.
    """

    wid: int
    after_frames: int

    def __post_init__(self) -> None:
        if self.wid < 0:
            raise ValueError(f"cut wid must be >= 0, got {self.wid}")
        if self.after_frames < 1:
            raise ValueError(
                f"after_frames must be >= 1, got {self.after_frames}")


@dataclass(frozen=True)
class NetFaultPlan:
    """One run's worth of injected network faults (deterministic
    given ``seed``)."""

    seed: int = 0
    drops: Tuple[FrameDrop, ...] = ()
    duplicates: Tuple[FrameDuplicate, ...] = ()
    delays: Tuple[FrameDelay, ...] = ()
    corrupts: Tuple[FrameCorrupt, ...] = ()
    stalls: Tuple[LinkStall, ...] = ()
    partitions: Tuple[NetPartition, ...] = ()
    cuts: Tuple[ConnectionCut, ...] = ()

    def __post_init__(self) -> None:
        # Tolerate lists from hand-built plans / JSON round-trips.
        for name in ("drops", "duplicates", "delays", "corrupts",
                     "stalls", "partitions", "cuts"):
            object.__setattr__(self, name, tuple(getattr(self, name)))
        seen = set()
        for c in self.cuts:
            if c.wid in seen:
                raise ValueError(f"worker {c.wid} is cut more than once")
            seen.add(c.wid)

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (any(d.probability > 0.0 for d in self.drops)
                    or any(d.probability > 0.0 for d in self.duplicates)
                    or any(d.probability > 0.0 for d in self.delays)
                    or any(c.probability > 0.0 for c in self.corrupts)
                    or self.stalls or self.partitions or self.cuts)

    def with_seed(self, seed: int) -> "NetFaultPlan":
        return replace(self, seed=seed)

    # ------------------------------------------------------------------
    # Deterministic per-frame randomness
    # ------------------------------------------------------------------

    def frame_rng(self, salt: int, index: int) -> random.Random:
        """A private RNG stream for frame ``index`` on the endpoint
        identified by ``salt`` (derived from side + wid).

        Same arithmetic shape as :meth:`FaultPlan.task_rng`: draws do
        not depend on send order across connections, only on the
        per-endpoint frame index.
        """
        return random.Random(
            (self.seed * 1_000_003 + index) * 2_147_483_647 + salt)

    # ------------------------------------------------------------------
    # Serialization (rides inside FaultPlan's --fault-plan JSON)
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"seed": self.seed}
        if self.drops:
            out["drops"] = [{"probability": d.probability,
                             "max_events": d.max_events}
                            for d in self.drops]
        if self.duplicates:
            out["duplicates"] = [{"probability": d.probability}
                                 for d in self.duplicates]
        if self.delays:
            out["delays"] = [{"probability": d.probability,
                              "seconds": d.seconds,
                              "min_seconds": d.min_seconds}
                             for d in self.delays]
        if self.corrupts:
            out["corrupts"] = [{"probability": c.probability,
                                "max_events": c.max_events}
                               for c in self.corrupts]
        if self.stalls:
            out["stalls"] = [
                {"wid": s.wid, "direction": s.direction, "start": s.start,
                 "end": (None if math.isinf(s.end) else s.end)}
                for s in self.stalls]
        if self.partitions:
            out["partitions"] = [
                {"wids": list(p.wids), "start": p.start,
                 "end": (None if math.isinf(p.end) else p.end)}
                for p in self.partitions]
        if self.cuts:
            out["cuts"] = [{"wid": c.wid, "after_frames": c.after_frames}
                           for c in self.cuts]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NetFaultPlan":
        known = {"seed", "drops", "duplicates", "delays", "corrupts",
                 "stalls", "partitions", "cuts"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown net-plan keys: {sorted(unknown)}")

        def window(d: Dict[str, object]) -> Dict[str, float]:
            return {"start": float(d.get("start", 0.0) or 0.0),
                    "end": (_INF if d.get("end") is None
                            else float(d["end"]))}

        return cls(
            seed=int(data.get("seed", 0)),
            drops=tuple(FrameDrop(
                probability=float(d["probability"]),
                max_events=(None if d.get("max_events") is None
                            else int(d["max_events"])))
                for d in data.get("drops", ())),
            duplicates=tuple(FrameDuplicate(
                probability=float(d["probability"]))
                for d in data.get("duplicates", ())),
            delays=tuple(FrameDelay(
                probability=float(d["probability"]),
                seconds=float(d.get("seconds", 0.005)),
                min_seconds=float(d.get("min_seconds", 0.0)))
                for d in data.get("delays", ())),
            corrupts=tuple(FrameCorrupt(
                probability=float(c["probability"]),
                max_events=int(c.get("max_events", 1)))
                for c in data.get("corrupts", ())),
            stalls=tuple(LinkStall(
                wid=int(s["wid"]),
                direction=str(s.get("direction", "w2d")), **window(s))
                for s in data.get("stalls", ())),
            partitions=tuple(NetPartition(
                wids=tuple(p["wids"]), **window(p))
                for p in data.get("partitions", ())),
            cuts=tuple(ConnectionCut(
                wid=int(c["wid"]), after_frames=int(c["after_frames"]))
                for c in data.get("cuts", ())),
        )

    def to_json(self, path: str) -> str:
        with open(path, "w") as fh:
            json.dump(self.as_dict(), fh, indent=2)
        return path

    @classmethod
    def from_json(cls, path: str) -> "NetFaultPlan":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


def default_chaos_plan(seed: int = 0,
                       partition_wids: Tuple[int, ...] = (2,),
                       cut_wid: int = 0) -> NetFaultPlan:
    """The CI chaos-smoke net plan: background drops, duplicates and
    delays, one corrupt frame, one mid-run partition, one mid-stream
    connection cut.  The matching process fault (one SIGKILL) comes
    from the surrounding :class:`FaultPlan` — which by default kills
    worker 1, so the partition targets worker 2 (a partition of an
    already-dead wid would never be observed)."""
    return NetFaultPlan(
        seed=seed,
        drops=(FrameDrop(probability=0.02),),
        duplicates=(FrameDuplicate(probability=0.01),),
        delays=(FrameDelay(probability=0.05, seconds=0.004),),
        corrupts=(FrameCorrupt(probability=0.05, max_events=1),),
        partitions=(NetPartition(wids=partition_wids,
                                 start=0.3, end=0.55),),
        cuts=(ConnectionCut(wid=cut_wid, after_frames=40),),
    )


# ----------------------------------------------------------------------
# Reconnect pacing
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class BackoffSchedule:
    """Seeded, jittered, deadline-budgeted exponential backoff.

    The nominal k-th delay is ``min(base * factor**k, max_delay)``;
    each realised delay is drawn uniformly in ``nominal * [1 - jitter,
    1 + jitter]`` and then clamped up to its predecessor, which keeps
    the sequence monotone non-decreasing *and* inside the jitter band
    (the previous delay never exceeds the next nominal's upper bound
    because ``factor >= 1``).  Generation stops before the cumulative
    sleep would exceed ``deadline`` — the total budget is a hard cap,
    never merely truncated.
    """

    base: float = 0.01
    factor: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.3
    deadline: float = 2.0

    def __post_init__(self) -> None:
        if self.base <= 0.0:
            raise ValueError(f"base must be > 0, got {self.base}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.max_delay < self.base:
            raise ValueError("max_delay must be >= base")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got "
                             f"{self.jitter}")
        if self.deadline <= 0.0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")

    def delays(self, seed: int = 0, key: int = 0,
               limit: int = 64) -> List[float]:
        """The realised sleep sequence for one (seed, key) stream."""
        rng = random.Random((seed * 1_000_003 + key) * 9_176_203 + 17)
        out: List[float] = []
        total = 0.0
        prev = 0.0
        for k in range(limit):
            nominal = min(self.base * self.factor ** k, self.max_delay)
            lo = nominal * (1.0 - self.jitter)
            hi = nominal * (1.0 + self.jitter)
            d = max(rng.uniform(lo, hi), prev)
            if total + d > self.deadline:
                break
            out.append(d)
            total += d
            prev = d
        return out


# ----------------------------------------------------------------------
# Failure detection
# ----------------------------------------------------------------------

class PhiAccrualDetector:
    """Phi-accrual failure detector over heartbeat arrival times.

    ``phi(now) = -log10 P(next heartbeat still pending at now)`` under
    a normal model of inter-arrival times; a phi of 8 means the
    silence is a 1-in-10^8 event for a live peer.  The window is
    seeded with ``expected_interval`` so suspicion works from the very
    first beats, and the standard deviation is floored (at ``min_std``,
    default the expected interval itself) so metronome-regular
    heartbeats cannot make the detector hair-triggered: with the
    default floor, ``phi_dead = 8`` needs roughly six missed intervals
    of silence, which a loaded CI machine will not produce for a live
    worker.  Thread-safe: ``beat`` is called from reader threads,
    ``phi`` from the drive loop.
    """

    def __init__(self, expected_interval: float, window: int = 64,
                 min_std: Optional[float] = None) -> None:
        if expected_interval <= 0.0:
            raise ValueError("expected_interval must be > 0")
        self.expected_interval = expected_interval
        self.window = max(4, window)
        self.min_std = (min_std if min_std is not None
                        else expected_interval)
        self._intervals: List[float] = [expected_interval]
        self._last: Optional[float] = None
        self._born = perf_counter()
        self._lock = threading.Lock()

    def beat(self, now: Optional[float] = None) -> None:
        """Record a heartbeat arrival (driver-clock seconds)."""
        t = perf_counter() if now is None else now
        with self._lock:
            if self._last is not None and t > self._last:
                self._intervals.append(t - self._last)
                if len(self._intervals) > self.window:
                    del self._intervals[0]
            self._last = t

    @property
    def last_beat(self) -> Optional[float]:
        with self._lock:
            return self._last

    def phi(self, now: Optional[float] = None) -> float:
        """Current suspicion level; 0.0 until the first beat."""
        t = perf_counter() if now is None else now
        with self._lock:
            if self._last is None:
                return 0.0
            elapsed = t - self._last
            n = len(self._intervals)
            mean = sum(self._intervals) / n
            var = sum((x - mean) ** 2 for x in self._intervals) / n
        std = max(math.sqrt(var), self.min_std)
        if elapsed <= mean:
            return 0.0
        # P(interval > elapsed) for a normal(mean, std) interval.
        p = 0.5 * math.erfc((elapsed - mean) / (std * math.sqrt(2.0)))
        if p <= 0.0:
            return _INF
        return -math.log10(p)

    def suspicion_latency(self, threshold: float) -> float:
        """Seconds of silence after the last beat before ``phi``
        crosses ``threshold`` (given the current window) — the
        detector's worst-case detection latency."""
        with self._lock:
            n = len(self._intervals)
            mean = sum(self._intervals) / n
            var = sum((x - mean) ** 2 for x in self._intervals) / n
        std = max(math.sqrt(var), self.min_std)
        # Invert phi: elapsed = mean + z * std with
        # 0.5 * erfc(z / sqrt(2)) = 10**-threshold.
        lo, hi = 0.0, 64.0
        target = 10.0 ** (-threshold)
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if 0.5 * math.erfc(mid / math.sqrt(2.0)) > target:
                lo = mid
            else:
                hi = mid
        return mean + hi * std
