"""Live fault injection and recovery policy for the threaded backend.

:mod:`repro.resilience.faults` describes *what* goes wrong;
:mod:`repro.runtime.parallel` decides *how the run survives it*.  This
module is the glue between the two for real threaded execution:

* :class:`LiveFaultInjector` evaluates a :class:`FaultPlan` inside
  actual ``ParallelExecutor`` worker threads — seeded transient payload
  exceptions (:class:`InjectedTransientError`), pre-payload worker
  stalls (interruptible sleeps), and post-payload NaN/Inf tile
  corruption.  All draws go through ``FaultPlan.task_rng`` so the same
  plan perturbs the same (task, attempt) pairs regardless of dispatch
  order.
* :class:`RecoveryPolicy` bundles the executor's recovery knobs:
  retry count, backoff/jitter, wall-clock task timeout, straggler
  detection and speculation thresholds, and write-tile scrubbing.
* :class:`TileAccessor` gives the executor raw access to tile storage
  (``DistMatrix._tiles``) for pre-task snapshots, restore-on-retry,
  corruption injection, and non-finite scrubbing.  It deliberately
  bypasses ``DistMatrix.tile()`` — executor-internal bookkeeping must
  not recurse into sync points or trip the footprint sanitizer.

Epoch-offset convention for ``task_rng`` draws (keeps live streams
disjoint from the simulator's attempt epochs, which start at 0):

====================  =======================
draw                  epoch
====================  =======================
worker stall          ``90_001 + attempt``
transient failure     ``90_100 + attempt``
tile corruption       ``90_200 + attempt``
retry backoff jitter  ``90_300 + attempt``
====================  =======================
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .faults import FaultPlan

__all__ = [
    "InjectedTransientError",
    "TileCorruptionDetected",
    "RecoveryPolicy",
    "TileAccessor",
    "LiveFaultInjector",
]

#: ``(mat_id, i, j)`` — mirrors :data:`repro.runtime.task.TileRef`.
TileRef = Tuple[int, int, int]


class InjectedTransientError(RuntimeError):
    """A seeded transient payload failure (soft error / ECC retry).

    Raised *instead of* running the payload, so the attempt leaves no
    partial writes and a plain re-execution is always safe.
    """


class TileCorruptionDetected(RuntimeError):
    """A task's output tile came back non-finite (caught corruption).

    The executor restores the pre-task snapshot of the write tiles and
    retries; if retries are exhausted the error propagates and the
    algorithm-level health guards take over.
    """


@dataclass(frozen=True)
class RecoveryPolicy:
    """Executor-level recovery knobs for :class:`ParallelExecutor`.

    A ``None`` policy (the default) disables every mechanism here and
    keeps the executor on its original fail-fast path — the fault-free
    hot path pays nothing.
    """

    #: Re-execution budget per task *beyond* the first attempt.
    #: Retries fire on retryable payload exceptions
    #: (:class:`InjectedTransientError`, :class:`TileCorruptionDetected`,
    #: and generic transient-looking errors); deterministic failures
    #: (``LinAlgError`` — numeric breakdown the algorithm must handle —
    #: and sanitizer findings) are never retried.
    max_retries: int = 2
    #: Sleep before retry k is ``backoff * 2**(k-1)``, scaled by a
    #: seeded jitter in ``[1-jitter, 1+jitter]``.
    backoff: float = 2.0e-3
    jitter: float = 0.5
    #: Wall-clock seconds after which a running attempt is declared
    #: timed out.  Python threads cannot be killed, so a timeout marks
    #: the attempt (FaultEvent + RecoveryStats) and — if the payload
    #: has not been claimed yet (it is still inside an injected stall)
    #: — launches a backup attempt.  ``None`` disables timeouts.
    task_timeout: Optional[float] = None
    #: Straggler detection: an attempt running longer than
    #: ``straggler_factor`` x the rolling mean duration of its task
    #: kind (and at least ``min_straggler_seconds``) is a straggler;
    #: with ``speculation`` on, an unclaimed straggler gets a
    #: speculative backup attempt (first claimer wins the payload, the
    #: loser wakes from its stall and reports itself lost without
    #: touching any tile).
    speculation: bool = True
    straggler_factor: float = 4.0
    min_straggler_seconds: float = 0.05
    #: Rolling-mean warmup: no straggler calls before this many
    #: completed samples of the task's kind.
    min_samples: int = 5
    #: Monitor poll period for the dispatch loop (seconds).
    poll_interval: float = 0.02
    #: Scan write tiles for NaN/Inf after every payload and treat hits
    #: as :class:`TileCorruptionDetected` (restore + retry).  Off by
    #: default: scrubbing costs a full pass over every output tile.
    scrub_writes: bool = False
    #: Heartbeat period for processes-backend workers (seconds);
    #: ``None`` disables heartbeats and phi-accrual failure detection.
    heartbeat_interval: Optional[float] = 0.05
    #: No suspicion verdicts before this many seconds after a worker
    #: spawns (lets the heartbeat window warm up).
    heartbeat_grace: float = 0.25
    #: Phi-accrual thresholds (see
    #: :class:`~repro.resilience.net.PhiAccrualDetector`): above
    #: ``phi_suspect`` the scheduler stops placing new work on the
    #: worker; above ``phi_dead`` the driver declares it hung, kills
    #: it, and replays its in-flight tasks — well before
    #: ``task_timeout`` has to fire.
    phi_suspect: float = 4.0
    phi_dead: float = 8.0
    #: Wall-clock budget for one reconnect-and-resync handshake after
    #: a dropped connection (ReliableComm); exhausting it surfaces a
    #: worker death instead of a silent hang.
    net_deadline: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 0.0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.task_timeout is not None and self.task_timeout <= 0.0:
            raise ValueError(
                f"task_timeout must be > 0 or None, got {self.task_timeout}")
        if self.straggler_factor < 1.0:
            raise ValueError(
                f"straggler_factor must be >= 1, got "
                f"{self.straggler_factor}")
        if self.min_straggler_seconds < 0.0:
            raise ValueError("min_straggler_seconds must be >= 0")
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be >= 1, got {self.min_samples}")
        if self.poll_interval <= 0.0:
            raise ValueError(
                f"poll_interval must be > 0, got {self.poll_interval}")
        if (self.heartbeat_interval is not None
                and self.heartbeat_interval <= 0.0):
            raise ValueError(
                f"heartbeat_interval must be > 0 or None, got "
                f"{self.heartbeat_interval}")
        if self.heartbeat_grace < 0.0:
            raise ValueError("heartbeat_grace must be >= 0")
        if not 0.0 < self.phi_suspect <= self.phi_dead:
            raise ValueError(
                f"need 0 < phi_suspect <= phi_dead, got "
                f"{self.phi_suspect} / {self.phi_dead}")
        if self.net_deadline <= 0.0:
            raise ValueError(
                f"net_deadline must be > 0, got {self.net_deadline}")

    def backoff_seconds(self, plan_seed: int, tid: int,
                        attempt: int) -> float:
        """Seeded exponential backoff before retry ``attempt`` (>= 1)."""
        if self.backoff <= 0.0 or attempt < 1:
            return 0.0
        base = self.backoff * (2.0 ** (attempt - 1))
        if self.jitter <= 0.0:
            return base
        rng = FaultPlan(seed=plan_seed).task_rng(tid, 90_300 + attempt)
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


class TileAccessor:
    """Raw tile storage access for executor-internal recovery.

    Wraps a ``mat_id -> DistMatrix`` mapping (the runtime's weak
    registry).  All methods touch ``DistMatrix._tiles`` directly: they
    run on executor threads where re-entering ``tile()``'s sync guard
    or the sanitizer hooks would deadlock or raise spurious findings.
    ``None`` entries (lazily-zero tiles) are preserved as ``None`` in
    snapshots and restored as such.
    """

    def __init__(self, matrices) -> None:
        self._matrices = matrices

    def _mat(self, ref: TileRef):
        """The owning DistMatrix, or None for refs that are not matrix
        tiles (scalar reduction pseudo-tiles, collected matrices)."""
        return self._matrices.get(ref[0])

    def snapshot(self, refs) -> Dict[TileRef, Optional[np.ndarray]]:
        """Copy the current contents of ``refs`` (write tiles).

        Non-matrix refs (scalar reduction pseudo-tiles) are skipped:
        scalar payloads overwrite their result wholesale, so a retry
        needs no restore for them.
        """
        snap: Dict[TileRef, Optional[np.ndarray]] = {}
        for ref in refs:
            if ref in snap:
                continue
            m = self._mat(ref)
            if m is None:
                continue
            t = m._tiles.get((ref[1], ref[2]))
            snap[ref] = None if t is None else np.array(t, copy=True)
        return snap

    def restore(self, snap: Dict[TileRef, Optional[np.ndarray]]) -> None:
        """Reinstall a snapshot (each restore installs fresh copies, so
        the snapshot stays pristine for further retries)."""
        for ref, t in snap.items():
            m = self._mat(ref)
            if m is None:
                continue
            key = (ref[1], ref[2])
            if t is None:
                m._tiles[key] = None
            else:
                m._tiles[key][...] = t

    def corrupt(self, ref: TileRef, value: str) -> bool:
        """Overwrite one entry of tile ``ref`` with NaN or Inf."""
        m = self._mat(ref)
        if m is None:
            return False
        key = (ref[1], ref[2])
        t = m._tiles.get(key)
        if t is None:  # lazily-zero tile: materialize it first
            t = np.zeros((m.tile_rows(ref[1]), m.tile_cols(ref[2])),
                         dtype=m.dtype)
            m._tiles[key] = t
        if not t.size:
            return False
        t.flat[0] = np.nan if value == "nan" else np.inf
        return True

    def nonfinite(self, refs) -> List[TileRef]:
        """Refs among ``refs`` whose tiles contain NaN/Inf entries."""
        bad: List[TileRef] = []
        for ref in refs:
            m = self._mat(ref)
            if m is None:
                continue
            t = m._tiles.get((ref[1], ref[2]))
            if t is not None and not np.all(np.isfinite(t)):
                bad.append(ref)
        return bad


class LiveFaultInjector:
    """Evaluate a :class:`FaultPlan`'s live faults inside real workers.

    Deterministic given the plan: every decision draws from
    ``plan.task_rng(tid, epoch)`` with the module-level epoch offsets,
    so two runs of the same plan on the same graph inject identical
    faults.  The only dispatch-order-dependent piece is the
    ``max_events`` budget of :class:`TileCorruption` (first matching
    attempt to draw wins the budget), which is taken under a lock.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._corruption_events = [0] * len(plan.corruptions)

    @property
    def active(self) -> bool:
        p = self.plan
        return (p.live_faults
                or (p.transient is not None
                    and p.transient.probability > 0.0))

    def stall_seconds(self, tid: int, kind: str, attempt: int) -> float:
        """Total injected pre-payload stall for this attempt (0 = none)."""
        total = 0.0
        for s in self.plan.stalls:
            if s.probability <= 0.0 or not s.matches_kind(kind):
                continue
            rng = self.plan.task_rng(tid, 90_001 + attempt)
            if rng.random() < s.probability:
                total += s.seconds
        return total

    def transient_fires(self, tid: int, attempt: int) -> bool:
        """Seeded pre-payload transient failure for this attempt.

        Mirrors the simulator's per-attempt model, but the final
        attempt the transient budget allows (``max_attempts - 1``
        retries) always succeeds, so a plan alone can never livelock a
        run whose :class:`RecoveryPolicy` grants enough retries.
        """
        tr = self.plan.transient
        if tr is None or tr.probability <= 0.0:
            return False
        if attempt >= tr.max_attempts - 1:
            return False
        rng = self.plan.task_rng(tid, 90_100 + attempt)
        return rng.random() < tr.probability

    def corruption_for(self, tid: int, kind: str, attempt: int,
                       n_writes: int) -> Optional[Tuple[int, str]]:
        """Post-payload corruption draw: ``(write_index, value)``.

        Returns ``None`` when nothing fires.  The per-spec
        ``max_events`` budget is consumed under the injector lock.
        """
        if n_writes <= 0:
            return None
        for idx, c in enumerate(self.plan.corruptions):
            if c.probability <= 0.0 or not c.matches_kind(kind):
                continue
            rng = self.plan.task_rng(tid, 90_200 + attempt)
            if rng.random() >= c.probability:
                continue
            with self._lock:
                if self._corruption_events[idx] >= c.max_events:
                    continue
                self._corruption_events[idx] += 1
            return (rng.randrange(n_writes), c.value)
        return None
