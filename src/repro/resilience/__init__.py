"""Resilience: fault injection, lineage replay, checkpoint/restart.

The robustness track of the reproduction: production runs of QDWH on
Summit/Frontier-class machines must survive node failures, soft
errors, degraded links, and stragglers.  This package supplies

* :mod:`.faults` — deterministic, seed-driven fault plans
  (:class:`FaultPlan`) the scheduler injects into a simulated run;
* :mod:`.recovery` — the scheduler-side recovery state: transient
  retry with backoff, rank-crash lineage replay
  (:func:`lineage_replay_set`), and straggler speculation;
* :mod:`.checkpoint` — QDWH checkpoint/restart: a real ``.npz``
  round-trip for the dense and tiled numeric paths and the Young/Daly
  cost model for the simulator;
* :mod:`.live` — live execution: the same :class:`FaultPlan`
  transients plus worker stalls and tile corruption fired inside real
  ``ParallelExecutor`` threads, and the :class:`RecoveryPolicy`
  (retries, timeouts, straggler speculation, write scrubbing) the
  executor survives them with.

See ``docs/resilience.md`` for the full model.
"""

from .checkpoint import (
    DEFAULT_IO_BANDWIDTH,
    CheckpointPolicy,
    QdwhCheckpointer,
    checkpoint_write_cost,
    expected_overhead,
    input_fingerprint,
    optimal_interval,
    recovery_overhead_curve,
)
from .faults import (
    FaultPlan,
    LinkDegradation,
    RankCrash,
    RecoveryStats,
    StragglerSlot,
    TileCorruption,
    TransientFaults,
    WorkerStall,
    plan_from_spec,
)
from .live import (
    InjectedTransientError,
    LiveFaultInjector,
    RecoveryPolicy,
    TileAccessor,
    TileCorruptionDetected,
)
from .net import (
    BackoffSchedule,
    ConnectionCut,
    FrameCorrupt,
    FrameDelay,
    FrameDrop,
    FrameDuplicate,
    LinkStall,
    NetFaultPlan,
    NetPartition,
    PhiAccrualDetector,
    default_chaos_plan,
)
from .recovery import (
    AllRanksDead,
    FaultToleranceExceeded,
    ResilienceState,
    lineage_replay_set,
)

__all__ = [
    "DEFAULT_IO_BANDWIDTH",
    "CheckpointPolicy",
    "QdwhCheckpointer",
    "checkpoint_write_cost",
    "expected_overhead",
    "input_fingerprint",
    "optimal_interval",
    "recovery_overhead_curve",
    "FaultPlan",
    "LinkDegradation",
    "RankCrash",
    "RecoveryStats",
    "StragglerSlot",
    "TileCorruption",
    "TransientFaults",
    "WorkerStall",
    "plan_from_spec",
    "BackoffSchedule",
    "ConnectionCut",
    "FrameCorrupt",
    "FrameDelay",
    "FrameDrop",
    "FrameDuplicate",
    "LinkStall",
    "NetFaultPlan",
    "NetPartition",
    "PhiAccrualDetector",
    "default_chaos_plan",
    "InjectedTransientError",
    "LiveFaultInjector",
    "RecoveryPolicy",
    "TileAccessor",
    "TileCorruptionDetected",
    "AllRanksDead",
    "FaultToleranceExceeded",
    "ResilienceState",
    "lineage_replay_set",
]
