"""Resilience: fault injection, lineage replay, checkpoint/restart.

The robustness track of the reproduction: production runs of QDWH on
Summit/Frontier-class machines must survive node failures, soft
errors, degraded links, and stragglers.  This package supplies

* :mod:`.faults` — deterministic, seed-driven fault plans
  (:class:`FaultPlan`) the scheduler injects into a simulated run;
* :mod:`.recovery` — the scheduler-side recovery state: transient
  retry with backoff, rank-crash lineage replay
  (:func:`lineage_replay_set`), and straggler speculation;
* :mod:`.checkpoint` — QDWH checkpoint/restart: a real ``.npz``
  round-trip for the eager numeric path and the Young/Daly cost
  model for the simulator.

See ``docs/resilience.md`` for the full model.
"""

from .checkpoint import (
    DEFAULT_IO_BANDWIDTH,
    CheckpointPolicy,
    QdwhCheckpointer,
    checkpoint_write_cost,
    expected_overhead,
    input_fingerprint,
    optimal_interval,
    recovery_overhead_curve,
)
from .faults import (
    FaultPlan,
    LinkDegradation,
    RankCrash,
    RecoveryStats,
    StragglerSlot,
    TransientFaults,
    plan_from_spec,
)
from .recovery import (
    AllRanksDead,
    FaultToleranceExceeded,
    ResilienceState,
    lineage_replay_set,
)

__all__ = [
    "DEFAULT_IO_BANDWIDTH",
    "CheckpointPolicy",
    "QdwhCheckpointer",
    "checkpoint_write_cost",
    "expected_overhead",
    "input_fingerprint",
    "optimal_interval",
    "recovery_overhead_curve",
    "FaultPlan",
    "LinkDegradation",
    "RankCrash",
    "RecoveryStats",
    "StragglerSlot",
    "TransientFaults",
    "plan_from_spec",
    "AllRanksDead",
    "FaultToleranceExceeded",
    "ResilienceState",
    "lineage_replay_set",
]
