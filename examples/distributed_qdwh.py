#!/usr/bin/env python
"""The tiled, task-based QDWH — the paper's SLATE implementation.

Runs Algorithm 1 on the block-cyclic tiled substrate: real numerics,
plus the recorded task DAG, which is then simulated on the Summit
machine model under both the task-based (SLATE) and fork-join
(ScaLAPACK) execution models.

Run:  python examples/distributed_qdwh.py
"""

import numpy as np

from repro import DistMatrix, ProcessGrid, Runtime, tiled_qdwh
from repro.machines import summit
from repro.matrices import ill_conditioned, polar_report
from repro.runtime import simulate
from repro.runtime.scheduler import forkjoin_config, taskbased_config
from repro.runtime.trace import kernel_breakdown, rank_utilization


def main() -> None:
    n, nb = 512, 64
    grid = ProcessGrid(2, 2)
    print(f"QDWH on a {n} x {n} ill-conditioned matrix, "
          f"nb = {nb}, {grid.p} x {grid.q} process grid")

    a = ill_conditioned(n, seed=0)
    rt = Runtime(grid)  # numeric mode: tiles hold real data
    da = DistMatrix.from_array(rt, a, nb, name="A")
    res = tiled_qdwh(rt, da)

    rep = polar_report(a, res.u.to_array(), res.h.to_array())
    print(f"\nNumerics: {res.iterations} iterations "
          f"({res.it_qr} QR + {res.it_chol} Cholesky)")
    print(f"  orthogonality error: {rep.orthogonality:.3e}")
    print(f"  backward error:      {rep.backward:.3e}")

    g = rt.graph
    print(f"\nRecorded task DAG: {len(g)} tasks, "
          f"{sum(len(t.deps) for t in g.tasks)} dependency edges")
    top = sorted(g.counts_by_kind().items(), key=lambda kv: -kv[1])[:6]
    print("  busiest kinds:", ", ".join(f"{k}={v}" for k, v in top))

    print("\nSimulating this DAG on the Summit model (4 ranks, 2 nodes):")
    machine = summit()
    for name, cfg in [
        ("task-based + GPUs (SLATE)",
         taskbased_config(machine, 2, 2, use_gpu=True)),
        ("task-based, CPU only",
         taskbased_config(machine, 2, 2, use_gpu=False)),
        ("fork-join, CPU only (ScaLAPACK model)",
         forkjoin_config(machine, 2, 2)),
    ]:
        r = simulate(g, cfg)
        util = rank_utilization(r)
        print(f"  {name:<38} makespan {r.makespan * 1e3:8.2f} ms, "
              f"mean rank utilization {util['mean']:.2f}")

    r = simulate(g, taskbased_config(machine, 2, 2, use_gpu=True))
    print("\nPer-kernel busy-time breakdown (GPU run):")
    for kind, busy, share in kernel_breakdown(r)[:5]:
        print(f"  {kind:>8}: {share * 100:5.1f}%")
    print("\nCommunication:", r.comm.as_dict()["bytes"])


if __name__ == "__main__":
    main()
