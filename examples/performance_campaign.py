#!/usr/bin/env python
"""A miniature version of the paper's benchmarking campaign.

Sweeps matrix sizes on the Summit and Frontier machine models and
prints the Tflop/s series behind Figures 2 and 5, plus the headline
GPU-vs-ScaLAPACK speedup.  Everything is simulated (see DESIGN.md);
run the full `pytest benchmarks/ --benchmark-only` harness for the
complete figure set.

Run:  python examples/performance_campaign.py
"""

from repro.bench import format_series, format_table
from repro.machines import frontier, summit
from repro.perf import figure_series, speedup_table


def main() -> None:
    sizes = (10_000, 20_000, 40_000, 80_000)
    print("Simulating QDWH on 1 Summit node (42 P9 cores + 6 V100)...")
    series = figure_series(summit(), 1,
                           ("slate_gpu", "slate_cpu", "scalapack"),
                           sizes, max_tiles=12)
    print(format_series(
        "Summit, 1 node - Tflop/s vs matrix size (cf. Fig 2a)",
        "n", sizes,
        {k: [round(p.tflops, 2) for p in v] for k, v in series.items()}))

    print("Simulating QDWH on 4 Frontier nodes (32 MI250X GCDs)...")
    fsizes = (20_000, 40_000, 80_000, 120_000)
    fseries = figure_series(frontier(), 4, ("slate_gpu",), fsizes,
                            max_tiles=12)
    print(format_series(
        "Frontier, 4 nodes - Tflop/s vs matrix size (cf. Fig 5/6)",
        "n", fsizes,
        {"slate_gpu": [round(p.tflops, 1) for p in fseries["slate_gpu"]]}))

    print("Headline speedup (cf. the paper's 18x claim):")
    rows = speedup_table(summit(), [1, 4],
                         sizes={1: (40_000, 80_000), 4: (80_000,)},
                         max_tiles=12)
    print(format_table(
        "max SLATE-GPU / ScaLAPACK speedup",
        ["nodes", "speedup", "at n"],
        [[r["nodes"], round(r["speedup"], 1), r["at_n"]] for r in rows]))


if __name__ == "__main__":
    main()
