#!/usr/bin/env python
"""A miniature version of the paper's benchmarking campaign.

Sweeps matrix sizes on the Summit and Frontier machine models and
prints the Tflop/s series behind Figures 2 and 5, plus the headline
GPU-vs-ScaLAPACK speedup, then profiles one point with the
observability subsystem (task timeline + metrics registry) the way
the paper's profiling campaign would.  Everything is simulated (see
DESIGN.md); run the full `pytest benchmarks/ --benchmark-only`
harness for the complete figure set.

Run:  python examples/performance_campaign.py
"""

from repro.bench import format_series, format_table
from repro.machines import frontier, summit
from repro.obs import TimelineSink, ascii_gantt, get_registry, reset_metrics
from repro.perf import figure_series, simulate_qdwh, speedup_table
from repro.perf.report import profile_report


def main() -> None:
    sizes = (10_000, 20_000, 40_000, 80_000)
    print("Simulating QDWH on 1 Summit node (42 P9 cores + 6 V100)...")
    series = figure_series(summit(), 1,
                           ("slate_gpu", "slate_cpu", "scalapack"),
                           sizes, max_tiles=12)
    print(format_series(
        "Summit, 1 node - Tflop/s vs matrix size (cf. Fig 2a)",
        "n", sizes,
        {k: [round(p.tflops, 2) for p in v] for k, v in series.items()}))

    print("Simulating QDWH on 4 Frontier nodes (32 MI250X GCDs)...")
    fsizes = (20_000, 40_000, 80_000, 120_000)
    fseries = figure_series(frontier(), 4, ("slate_gpu",), fsizes,
                            max_tiles=12)
    print(format_series(
        "Frontier, 4 nodes - Tflop/s vs matrix size (cf. Fig 5/6)",
        "n", fsizes,
        {"slate_gpu": [round(p.tflops, 1) for p in fseries["slate_gpu"]]}))

    print("Headline speedup (cf. the paper's 18x claim):")
    rows = speedup_table(summit(), [1, 4],
                         sizes={1: (40_000, 80_000), 4: (80_000,)},
                         max_tiles=12)
    print(format_table(
        "max SLATE-GPU / ScaLAPACK speedup",
        ["nodes", "speedup", "at n"],
        [[r["nodes"], round(r["speedup"], 1), r["at_n"]] for r in rows]))

    # Profile one point with the observability subsystem: capture the
    # full task timeline, print the profiler-style report and Gantt,
    # and show what the process-wide metrics registry accumulated.
    print("Profiling the 1-node Summit GPU point (n=40k)...")
    reset_metrics()
    sink = TimelineSink()
    point = simulate_qdwh(summit(), 1, 40_000, "slate_gpu",
                          max_tiles=10, sink=sink)
    print(profile_report(point, timeline=sink), end="")
    print(ascii_gantt(sink, width=64), end="")

    snap = get_registry().snapshot()
    crow = [[name, f"{val:.6g}"]
            for name, val in sorted(snap["counters"].items())]
    print(format_table("metrics registry (counters)",
                       ["counter", "value"], crow))


if __name__ == "__main__":
    main()
