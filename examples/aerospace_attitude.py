#!/usr/bin/env python
"""Re-orthogonalizing a strapdown attitude matrix (Bar-Itzhack, 1975).

The paper's introduction cites aerospace computations as a classic
polar-decomposition application: a direction-cosine (rotation) matrix
integrated from gyro rates drifts away from the orthogonal group;
the *optimal* (Frobenius-nearest) orthogonal correction is exactly the
unitary polar factor.

This example integrates a rigid-body attitude with a crude integrator,
watches orthogonality drift, and repairs it with QDWH.

Run:  python examples/aerospace_attitude.py
"""

import numpy as np

from repro import qdwh
from repro.matrices.metrics import orthogonality_error


def skew(w: np.ndarray) -> np.ndarray:
    return np.array([[0.0, -w[2], w[1]],
                     [w[2], 0.0, -w[0]],
                     [-w[1], w[0], 0.0]])


def integrate_attitude(steps: int, dt: float) -> np.ndarray:
    """Euler-integrate dR/dt = R * skew(omega) — deliberately sloppy,
    like a cheap onboard integrator."""
    rng = np.random.default_rng(0)
    r = np.eye(3)
    for k in range(steps):
        omega = np.array([0.3 * np.sin(0.01 * k),
                          0.2 * np.cos(0.013 * k),
                          0.1]) + 0.01 * rng.standard_normal(3)
        r = r @ (np.eye(3) + dt * skew(omega))  # first-order update
    return r


def main() -> None:
    print("Integrating body rates with a first-order scheme "
          "(10k steps, dt = 0.05)...")
    r_drifted = integrate_attitude(10_000, 0.05)
    drift = orthogonality_error(r_drifted)
    print(f"  orthogonality drift ||I - R^T R||_F / sqrt(3): {drift:.3e}")
    print(f"  det(R) = {np.linalg.det(r_drifted):.6f} (should be 1)")

    print("\nRepairing with the polar decomposition (QDWH)...")
    res = qdwh(r_drifted)
    r_fixed = res.u
    print(f"  iterations: {res.iterations}")
    print(f"  orthogonality after repair: "
          f"{orthogonality_error(r_fixed):.3e}")
    print(f"  det(R) = {np.linalg.det(r_fixed):.12f}")

    # Optimality: the polar factor is the *nearest* orthogonal matrix.
    dist_polar = np.linalg.norm(r_fixed - r_drifted)
    q_gs, _ = np.linalg.qr(r_drifted)  # Gram-Schmidt alternative
    q_gs *= np.sign(np.diag(np.linalg.qr(r_drifted)[1]))[None, :]
    dist_gs = np.linalg.norm(q_gs - r_drifted)
    print("\nDistance from the drifted matrix (smaller = better):")
    print(f"  polar factor (optimal):   {dist_polar:.6e}")
    print(f"  Gram-Schmidt (QR) repair: {dist_gs:.6e}")
    assert dist_polar <= dist_gs + 1e-12


if __name__ == "__main__":
    main()
