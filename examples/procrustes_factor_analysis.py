#!/usr/bin/env python
"""Orthogonal Procrustes via the polar decomposition (Schoenemann, 1966).

The paper's second application citation: in factor analysis one seeks
the rotation T minimizing ||A T - B||_F over orthogonal T — the answer
is the unitary polar factor of A^H B.

This example rotates a noisy factor-loading matrix back onto a target
configuration and compares QDWH against the SVD route.

Run:  python examples/procrustes_factor_analysis.py
"""

import numpy as np

from repro import polar_svd, qdwh
from repro.matrices.generator import random_unitary


def procrustes(a: np.ndarray, b: np.ndarray, method: str = "qdwh"):
    """argmin_{T orthogonal} ||A T - B||_F  =  polar factor of A^H B."""
    m = a.conj().T @ b
    if method == "qdwh":
        return qdwh(m).u
    return polar_svd(m).u


def main() -> None:
    rng = np.random.default_rng(3)
    n_subjects, n_factors = 300, 8

    print("Setting up a factor-analysis alignment problem...")
    b = rng.standard_normal((n_subjects, n_factors))     # target loadings
    t_true = random_unitary(n_factors, seed=4)           # hidden rotation
    a = b @ t_true.T + 0.05 * rng.standard_normal(b.shape)  # observed

    print(f"  loadings: {n_subjects} subjects x {n_factors} factors, "
          "5% noise, hidden orthogonal rotation")

    misfit_before = np.linalg.norm(a - b)
    t_qdwh = procrustes(a, b, "qdwh")
    t_svd = procrustes(a, b, "svd")

    misfit_after = np.linalg.norm(a @ t_qdwh - b)
    print(f"\n  misfit before alignment: {misfit_before:.3f}")
    print(f"  misfit after alignment:  {misfit_after:.3f}")
    print(f"  rotation recovery error ||T - T_true||_F: "
          f"{np.linalg.norm(t_qdwh - t_true):.4f}")
    print(f"  qdwh vs svd route agreement: "
          f"{np.abs(t_qdwh - t_svd).max():.3e}")

    # The Procrustes optimum is a true minimum: random orthogonal
    # perturbations can only increase the misfit.
    for trial in range(3):
        q = random_unitary(n_factors, seed=10 + trial)
        worse = np.linalg.norm(a @ q - b)
        assert worse >= misfit_after
    print("  verified: random rotations all fit worse (optimality).")


if __name__ == "__main__":
    main()
