#!/usr/bin/env python
"""Partial eigensolves by spectrum slicing — the paper's future work.

Section 8: "we would like to use QDWH polar decomposition as the main
building block to develop partial EVD implementations, to support more
economical partial spectrum requirements."

One polar decomposition of A - sigma*I yields the matrix sign function
and with it the spectral projector onto the eigenvalues above sigma;
only that invariant subspace is then diagonalized.  This example
extracts the occupied states of a model Hamiltonian (the classic
electronic-structure use case) without ever solving the full problem.

Run:  python examples/spectrum_slicing.py
"""

import numpy as np

from repro.core.qdwh_eig import qdwh_eigh, qdwh_partial_eigh


def model_hamiltonian(n: int, gap_at: float = 0.0,
                      seed: int = 0) -> np.ndarray:
    """A dense symmetric 'Hamiltonian' with a spectral gap at E=0:
    half the states below (occupied), half above (virtual)."""
    rng = np.random.default_rng(seed)
    occupied = np.sort(rng.uniform(-6.0, -1.0, n // 2))
    virtual = np.sort(rng.uniform(1.0, 6.0, n - n // 2))
    w = np.concatenate([occupied, virtual])
    from repro.matrices.generator import random_unitary
    q = random_unitary(n, seed=seed + 1)
    return (q * w[None, :]) @ q.T, w


def main() -> None:
    n = 300
    h, w_true = model_hamiltonian(n)
    n_occ = n // 2
    print(f"Model Hamiltonian: n = {n}, {n_occ} occupied states below "
          "the gap at E = 0")

    print("\nSlicing at E = 0 with one polar decomposition...")
    part = qdwh_partial_eigh(h, sigma=0.0, side="below", min_block=48)
    print(f"  polar decompositions used: {part.polar_calls}")
    print(f"  states found: {part.w.size} (expected {n_occ})")
    err = np.abs(np.sort(part.w) - w_true[:n_occ]).max()
    print(f"  max eigenvalue error vs ground truth: {err:.3e}")
    res = np.linalg.norm(h @ part.v - part.v * part.w)
    print(f"  residual ||H V - V W||: {res:.3e}")

    # Band energy (the quantity electronic structure actually needs).
    e_band = part.w.sum()
    print(f"  band energy: {e_band:.6f} "
          f"(exact {w_true[:n_occ].sum():.6f})")

    print("\nFor contrast, the full divide-and-conquer EVD:")
    full = qdwh_eigh(h, min_block=48)
    print(f"  polar decompositions used: {full.polar_calls} "
          "(the slice needed far fewer)")
    assert full.polar_calls > part.polar_calls

    print("\nSlicing a window (0 < E < 3) with two slices:")
    lo = qdwh_partial_eigh(h, sigma=0.0, side="above", min_block=48)
    inside = lo.w[lo.w < 3.0]
    expected = w_true[(w_true > 0) & (w_true < 3.0)]
    print(f"  states in window: {inside.size} (expected {expected.size})")


if __name__ == "__main__":
    main()
