#!/usr/bin/env python
"""Quickstart: compute a polar decomposition with QDWH.

Generates an ill-conditioned test matrix (the paper's worst-case
workload), runs the QDWH polar decomposition, and checks the two
accuracy metrics from the paper's Figure 1.

Run:  python examples/quickstart.py [n]
"""

import sys

import numpy as np

from repro import ill_conditioned, polar, polar_report, qdwh


def main(n: int = 512) -> None:
    print(f"Generating an ill-conditioned {n} x {n} matrix "
          f"(kappa = 1e16, the paper's worst case)...")
    a = ill_conditioned(n, seed=42)

    print("Running QDWH (Algorithm 1)...")
    result = qdwh(a)
    print(f"  converged in {result.iterations} iterations "
          f"({result.it_qr} QR-based + {result.it_chol} Cholesky-based; "
          f"the paper reports 3 + 3 for this workload)")
    print(f"  two-norm estimate alpha = {result.alpha:.4f}")
    print(f"  initial lower bound l0  = {result.l0:.3e}")

    rep = polar_report(a, result.u, result.h)
    print("\nAccuracy (Fig. 1 metrics):")
    print(f"  orthogonality ||I - U^H U||_F / sqrt(n) = "
          f"{rep.orthogonality:.3e}")
    print(f"  backward error ||A - U H||_F / ||A||_F  = "
          f"{rep.backward:.3e}")
    print(f"  H Hermitian defect                       = "
          f"{rep.h_hermitian:.3e}")
    print(f"  H negative-eigenvalue defect             = "
          f"{rep.h_psd_defect:.3e}")

    print("\nCross-checking against the SVD-based baseline...")
    ref = polar(a, method="svd")
    print(f"  ||U_qdwh - U_svd||_max = {np.abs(result.u - ref.u).max():.3e}")

    print("\nOther methods on the same matrix:")
    for method in ("newton_scaled", "zolo"):
        r = polar(a, method=method)
        rep_m = polar_report(a, r.u, r.h)
        print(f"  {method:>14}: {r.iterations} iterations, "
              f"backward error {rep_m.backward:.3e}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 512)
