#!/usr/bin/env python
"""SVD through the polar decomposition (Higham-Papadimitriou).

The paper's Section 3 motivation: A = Up H, then the EVD H = V L V^H
gives A = (Up V) L V^H = U Sigma V^H.  Also demonstrates the
"light-weight" partial SVD the introduction mentions for extreme
adaptive optics (Ltaief et al., PASC'18): recover only the singular
triplets above a threshold from one polar decomposition.

Run:  python examples/svd_via_polar.py
"""

import numpy as np

from repro import generate_matrix
from repro.core.qdwh_svd import qdwh_partial_svd, qdwh_svd


def full_svd_demo() -> None:
    print("=== Full SVD via QDWH polar decomposition ===")
    a = generate_matrix(400, 200, cond=1e10, seed=0)
    r = qdwh_svd(a, eig_min_block=32)
    recon = (r.u * r.s[None, :]) @ r.vh
    print(f"  matrix: 400 x 200, kappa = 1e10")
    print(f"  polar stage: {r.polar_iterations} QDWH iterations")
    print(f"  reconstruction error: "
          f"{np.linalg.norm(recon - a) / np.linalg.norm(a):.3e}")
    s_ref = np.linalg.svd(a, compute_uv=False)
    print(f"  singular-value error vs LAPACK: "
          f"{np.abs(r.s - s_ref).max() / s_ref[0]:.3e}")


def partial_svd_demo() -> None:
    print("\n=== Partial SVD: the adaptive-optics use case ===")
    # A measurement-like matrix with a strong low-rank signal plus a
    # long tail of weak modes — keep only the significant ones.
    rng = np.random.default_rng(1)
    n_strong = 12
    sigma = np.concatenate([
        np.linspace(100.0, 20.0, n_strong),      # signal modes
        np.geomspace(0.5, 1e-3, 188),            # noise tail
    ])
    a = generate_matrix(500, 200, sigma=sigma, seed=2)
    del rng

    r = qdwh_partial_svd(a, threshold=10.0)
    print(f"  requested: singular values > 10 "
          f"(true count: {np.sum(sigma > 10.0)})")
    print(f"  recovered: {r.s.size} triplets")
    print(f"  largest: {r.s[0]:.2f}, smallest kept: {r.s[-1]:.2f}")
    rank_k = (r.u * r.s[None, :]) @ r.vh
    tail_energy = np.sqrt(np.sum(sigma[sigma <= 10.0] ** 2))
    err = np.linalg.norm(a - rank_k)
    print(f"  truncation error {err:.4f} vs discarded-tail energy "
          f"{tail_energy:.4f} (optimal)")


def main() -> None:
    full_svd_demo()
    partial_svd_demo()


if __name__ == "__main__":
    main()
